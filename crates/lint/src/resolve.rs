//! The workspace-wide program model: every file of every crate parsed
//! into one structure, with a cross-file, cross-crate call graph over it.
//!
//! PR 5's reachability pass was intra-file: a panic in a private helper
//! whose only public caller lived in another module was attributed as
//! "no public caller found in this file". This module removes that
//! limitation. [`Program::build`] takes every `(path, source)` pair of a
//! scan, derives each file's **crate** from its workspace path
//! (`crates/<dir>/src/…` → `swque_<dir>`, the root `src/` → the `swque`
//! facade), parses each file, collects every `fn` item into one global
//! table, and connects them with name-keyed call edges scoped by Rust's
//! actual visibility reach:
//!
//! * **same file** — any mention of the callee's name counts (exactly the
//!   PR-5 "call-graph-lite" semantics: `g(x)`, `self.g()`, `Self::g`);
//! * **same crate, different file** — the callee must be `pub` (any
//!   `pub(...)` form; the parser does not distinguish restrictions, which
//!   over-approximates callers — that can lengthen a chain, never hide a
//!   panic);
//! * **different crate** — the callee must be `pub` *and* the caller's
//!   file must mention the callee's crate ident (`use swque_mem::…` or a
//!   fully qualified path both leave the ident in the token stream).
//!
//! [`path_to_pub`] then answers the question the panic pass asks — which
//! public API reaches this function? — with a BFS over the caller edges
//! that is free to cross file and crate boundaries, returning the full
//! hop chain for the diagnostic.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::parser::{parse, walk_items, Ast, ItemKind};

/// One parsed file of the program.
pub struct Unit<'a> {
    /// Workspace-relative, forward-slash path.
    pub rel: &'a str,
    /// The file's parse tree (comment-free token stream included).
    pub ast: Ast<'a>,
    /// The crate the file belongs to, as the ident other files would
    /// `use` (e.g. `swque_mem`; the root facade is `swque`).
    pub crate_name: String,
    /// Crate idents of *other* units this file mentions anywhere in its
    /// token stream — the import relation the cross-crate edges require.
    pub imports: Vec<String>,
}

/// One function in the global table.
pub struct FnNode {
    /// Index of the unit the function lives in.
    pub unit: usize,
    /// The function's name.
    pub name: String,
    /// True when the item is `pub` (any `pub(...)` form).
    pub vis_pub: bool,
    /// Token range of the whole item within its unit's AST.
    pub lo: usize,
    /// One past the last token of the item.
    pub hi: usize,
    /// Signature token range (after the name, up to the body or `;`).
    pub sig: (usize, usize),
    /// 1-based line of the item's first token.
    pub line: u32,
    /// 1-based line of the name ident (where a `swque-domain` annotation
    /// anchors).
    pub name_line: u32,
}

/// The whole-workspace program model.
pub struct Program<'a> {
    /// Every parsed file.
    pub units: Vec<Unit<'a>>,
    /// Every `fn` item of every unit, at any nesting depth.
    pub fns: Vec<FnNode>,
    /// `callers[g]` = indices of functions whose body mentions `fns[g]`'s
    /// name, subject to the visibility scoping in the module docs.
    pub callers: Vec<Vec<usize>>,
    /// Function indices grouped by name (the call-edge index).
    by_name: BTreeMap<String, Vec<usize>>,
}

/// The crate ident a workspace-relative path belongs to:
/// `crates/<dir>/…` → `swque_<dir>` (dashes mapped to underscores),
/// anything else → the root `swque` facade.
pub fn crate_of(rel: &str) -> String {
    let mut segs = rel.split('/');
    if segs.next() == Some("crates") {
        if let Some(dir) = segs.next() {
            return format!("swque_{}", dir.replace('-', "_"));
        }
    }
    "swque".to_string()
}

impl<'a> Program<'a> {
    /// Parses every `(rel, src)` pair and wires the call graph.
    pub fn build(sources: &'a [(String, String)]) -> Program<'a> {
        let mut units: Vec<Unit<'a>> = sources
            .iter()
            .map(|(rel, src)| Unit {
                rel,
                ast: parse(src),
                crate_name: crate_of(rel),
                imports: Vec::new(),
            })
            .collect();

        // The import relation: unit U imports crate C when any ident
        // token of U equals C's ident and some other unit belongs to C.
        let crate_names: Vec<String> = {
            let mut names: Vec<String> = units.iter().map(|u| u.crate_name.clone()).collect();
            names.sort();
            names.dedup();
            names
        };
        for unit in &mut units {
            let mut imports: Vec<String> = unit
                .ast
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .filter(|t| crate_names.iter().any(|c| c == t.text))
                .map(|t| t.text.to_string())
                .collect();
            imports.sort();
            imports.dedup();
            unit.imports = imports;
        }

        // The global function table.
        let mut fns: Vec<FnNode> = Vec::new();
        for (u_idx, unit) in units.iter().enumerate() {
            walk_items(&unit.ast, &unit.ast.items, false, &mut |item, _| {
                if let ItemKind::Fn { name, sig, .. } = item.kind {
                    fns.push(FnNode {
                        unit: u_idx,
                        name: unit.ast.text(name).to_string(),
                        vis_pub: item.vis_pub,
                        lo: item.lo,
                        hi: item.hi,
                        sig,
                        line: unit.ast.pos(item.lo).0,
                        name_line: unit.ast.pos(name).0,
                    });
                }
            });
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }

        let mut prog = Program { units, fns, callers: Vec::new(), by_name };
        prog.callers = prog.build_edges();
        prog
    }

    /// True when a call edge from `f` (caller) to `g` (callee) is in
    /// scope per the visibility rules in the module docs.
    pub fn edge_allowed(&self, f: usize, g: usize) -> bool {
        let (cf, cg) = (&self.fns[f], &self.fns[g]);
        if cf.unit == cg.unit {
            return true;
        }
        if !cg.vis_pub {
            return false;
        }
        let (uf, ug) = (&self.units[cf.unit], &self.units[cg.unit]);
        uf.crate_name == ug.crate_name || uf.imports.iter().any(|i| *i == ug.crate_name)
    }

    /// Callee candidates for a call site: every function named `name`
    /// that `caller` could reach under the edge scoping rules.
    pub fn candidates(&self, caller: usize, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| v.iter().copied().filter(|&g| self.edge_allowed(caller, g)).collect())
            .unwrap_or_default()
    }

    /// Name-keyed call edges: `callers[g]` lists every function whose
    /// token range mentions `g`'s name, scoped by [`Program::edge_allowed`].
    fn build_edges(&self) -> Vec<Vec<usize>> {
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (f_idx, f) in self.fns.iter().enumerate() {
            let ast = &self.units[f.unit].ast;
            for i in f.lo..f.hi {
                let Some(t) = ast.tok(i) else { continue };
                if t.kind != TokKind::Ident {
                    continue;
                }
                let Some(cands) = self.by_name.get(t.text) else { continue };
                for &g_idx in cands {
                    if g_idx == f_idx {
                        continue;
                    }
                    let g = &self.fns[g_idx];
                    // Skip the callee's own definition site.
                    if g.unit == f.unit && g.lo <= i && i < g.hi {
                        continue;
                    }
                    if !self.edge_allowed(f_idx, g_idx) {
                        continue;
                    }
                    if !callers[g_idx].contains(&f_idx) {
                        callers[g_idx].push(f_idx);
                    }
                }
            }
        }
        callers
    }

    /// The innermost function of `unit` whose token range contains
    /// `tok_idx`, as a global function index.
    pub fn enclosing_fn(&self, unit: usize, tok_idx: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.unit == unit && f.lo <= tok_idx && tok_idx < f.hi)
            .max_by_key(|(_, f)| f.lo)
            .map(|(i, _)| i)
    }
}

/// BFS from `start` backwards over the caller edges to the nearest
/// `pub fn`; returns the chain `[pub, …, start]` of global function
/// indices when one exists. Free to cross file and crate boundaries.
pub fn path_to_pub(prog: &Program<'_>, start: usize) -> Option<Vec<usize>> {
    if prog.fns[start].vis_pub {
        return Some(vec![start]);
    }
    let mut parent: Vec<Option<usize>> = vec![None; prog.fns.len()];
    let mut seen = vec![false; prog.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(x) = queue.pop_front() {
        for &c in &prog.callers[x] {
            if seen[c] {
                continue;
            }
            seen[c] = true;
            parent[c] = Some(x);
            if prog.fns[c].vis_pub {
                return Some(reconstruct(&parent, start, c));
            }
            queue.push_back(c);
        }
    }
    None
}

/// Chain from `pub_fn` down to `start` following the BFS parents.
fn reconstruct(parent: &[Option<usize>], start: usize, pub_fn: usize) -> Vec<usize> {
    let mut chain = vec![pub_fn];
    let mut cur = pub_fn;
    while cur != start {
        match parent[cur] {
            Some(p) => {
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain
}

/// Formats a reachability chain for diagnostics: each hop as
/// `name:line`, with `(file)` appended for hops outside `home_unit`.
pub fn format_chain(prog: &Program<'_>, chain: &[usize], home_unit: usize) -> String {
    let hops: Vec<String> = chain
        .iter()
        .map(|&f| {
            let node = &prog.fns[f];
            if node.unit == home_unit {
                format!("{}:{}", node.name, node.line)
            } else {
                format!("{}:{} ({})", node.name, node.line, prog.units[node.unit].rel)
            }
        })
        .collect();
    hops.join(" \u{2192} ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect()
    }

    #[test]
    fn crate_derivation_from_paths() {
        assert_eq!(crate_of("crates/mem/src/dram.rs"), "swque_mem");
        assert_eq!(crate_of("crates/swque-lint/src/lib.rs"), "swque_swque_lint");
        assert_eq!(crate_of("src/lib.rs"), "swque");
        assert_eq!(crate_of("examples/quickstart.rs"), "swque");
    }

    #[test]
    fn same_file_edges_match_pr5_semantics() {
        let srcs = sources(&[(
            "crates/cpu/src/x.rs",
            "fn inner() {}\nfn mid() { inner(); }\npub fn entry() { mid(); }\n",
        )]);
        let prog = Program::build(&srcs);
        assert_eq!(prog.fns.len(), 3);
        let inner = prog.fns.iter().position(|f| f.name == "inner").unwrap();
        let chain = path_to_pub(&prog, inner).unwrap();
        let names: Vec<&str> = chain.iter().map(|&f| prog.fns[f].name.as_str()).collect();
        assert_eq!(names, ["entry", "mid", "inner"]);
    }

    #[test]
    fn cross_file_attribution_requires_pub_callee() {
        // `helper` is private but its caller `drive` is pub in another
        // file of the same crate: the chain must cross the file boundary
        // through the pub callee `step`.
        let srcs = sources(&[
            (
                "crates/cpu/src/core.rs",
                "fn helper() {}\npub fn step() { helper(); }\n",
            ),
            ("crates/cpu/src/driver.rs", "pub fn drive() { step(); }\n"),
        ]);
        let prog = Program::build(&srcs);
        let helper = prog.fns.iter().position(|f| f.name == "helper").unwrap();
        let step = prog.fns.iter().position(|f| f.name == "step").unwrap();
        // `step` is pub, so `drive` gains a caller edge to it.
        assert!(prog.callers[step].iter().any(|&c| prog.fns[c].name == "drive"));
        // `helper` is private: no cross-file caller may reach it directly.
        assert!(prog.callers[helper].iter().all(|&c| prog.fns[c].unit == prog.fns[helper].unit));
        let chain = path_to_pub(&prog, helper).unwrap();
        assert_eq!(prog.fns[chain[0]].name, "step", "nearest pub fn wins");
    }

    #[test]
    fn cross_crate_edges_require_an_import() {
        let importer = "use swque_mem::fill;\nfn local() { fill(); }\n";
        let stranger = "fn other() { fill(); }\n";
        let callee = "pub fn fill() {}\n";
        let srcs = sources(&[
            ("crates/cpu/src/a.rs", importer),
            ("crates/core/src/b.rs", stranger),
            ("crates/mem/src/c.rs", callee),
        ]);
        let prog = Program::build(&srcs);
        let fill = prog.fns.iter().position(|f| f.name == "fill").unwrap();
        let caller_names: Vec<&str> =
            prog.callers[fill].iter().map(|&c| prog.fns[c].name.as_str()).collect();
        assert_eq!(caller_names, ["local"], "only the importing crate gets the edge");
    }

    #[test]
    fn chain_format_marks_foreign_files() {
        let srcs = sources(&[
            ("crates/cpu/src/core.rs", "fn helper() { }\npub fn step() { helper(); }\n"),
            ("crates/cpu/src/driver.rs", "pub fn drive() { step(); }\n"),
        ]);
        let prog = Program::build(&srcs);
        let helper = prog.fns.iter().position(|f| f.name == "helper").unwrap();
        let chain = path_to_pub(&prog, helper).unwrap();
        let home = prog.fns[helper].unit;
        let text = format_chain(&prog, &chain, home);
        assert!(text.contains("step:2"), "{text}");
        assert!(!text.contains("core.rs"), "home-file hops carry no path: {text}");
    }

    #[test]
    fn candidates_respect_scoping() {
        let srcs = sources(&[
            ("crates/mem/src/a.rs", "pub fn probe() {}\nfn probe_helper() { probe(); }\n"),
            ("crates/cpu/src/b.rs", "fn cpu_side() {}\n"),
        ]);
        let prog = Program::build(&srcs);
        let cpu_side = prog.fns.iter().position(|f| f.name == "cpu_side").unwrap();
        // No `use swque_mem` in b.rs: the cross-crate candidate set is empty.
        assert!(prog.candidates(cpu_side, "probe").is_empty());
        let helper = prog.fns.iter().position(|f| f.name == "probe_helper").unwrap();
        assert_eq!(prog.candidates(helper, "probe").len(), 1);
    }
}
