//! A minimal, total recursive-descent parser for the Rust subset the
//! rule engine needs.
//!
//! The PR-4 engine matched token windows (`prev == "." && next == "("`),
//! which cannot tell a `HashMap` that is iterated from one that is only
//! probed, or attribute a panic to the public item that reaches it. This
//! parser recovers just enough structure for those judgements:
//!
//! * **items** — `fn` (name, visibility, signature, body), `impl` /
//!   `mod` / `trait` bodies (recursed), `struct` / `enum` (field type
//!   tokens kept), `static` (mutability kept), everything else verbatim;
//! * **expressions** — paths, method calls, free calls, macro calls,
//!   `as` casts, binary operators, `for` loops, `let` bindings, blocks;
//! * **attributes** — kept per item so `#[cfg(test)]` regions are a
//!   structural fact instead of a brace-matching scan.
//!
//! Like the lexer underneath it, the parser is held to two properties
//! (see `crates/lint/tests/prop_parser.rs`):
//!
//! 1. **Total** — parsing never panics and never loses tokens, whatever
//!    token soup it is fed. Anything unparseable degrades to a
//!    [`ExprKind::Verbatim`] leaf, always consuming at least one token.
//! 2. **Faithful** — every non-comment token of the source appears in
//!    the AST exactly once, in order (top-level item ranges tile the
//!    token stream),
//!    and printing the AST back out ([`Ast::pretty`]) re-lexes to the
//!    same token text sequence.
//!
//! The grammar subset is documented operator-by-operator in DESIGN.md §8.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed file: the shared (comment-free) token buffer plus the item
/// forest over it. All AST nodes index into `toks`.
#[derive(Debug, Clone)]
pub struct Ast<'a> {
    /// Every non-comment token of the source, in order.
    pub toks: Vec<Tok<'a>>,
    /// Top-level items, in order.
    pub items: Vec<Item>,
}

/// One attribute, e.g. `#[cfg(test)]` or `#![warn(missing_docs)]`: the
/// token range covering `#` through the closing `]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// First token index (the `#`).
    pub lo: usize,
    /// One past the closing `]`.
    pub hi: usize,
}

/// An item: attributes, visibility, kind, and its full token range
/// (attributes included).
#[derive(Debug, Clone)]
pub struct Item {
    /// Attributes preceding the item.
    pub attrs: Vec<Attr>,
    /// True when the item is `pub` (any `pub(...)` form counts).
    pub vis_pub: bool,
    /// What the item is.
    pub kind: ItemKind,
    /// First token index of the item (its first attribute, if any).
    pub lo: usize,
    /// One past the last token of the item.
    pub hi: usize,
}

/// The kinds of item the rules distinguish.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `fn name(sig) -> ret { body }` (or `;` for trait methods).
    Fn {
        /// Token index of the name ident.
        name: usize,
        /// Signature token range: from after the name to the body `{`
        /// (exclusive) or the terminating `;`.
        sig: (usize, usize),
        /// The body block, absent for bodyless trait methods.
        body: Option<Block>,
    },
    /// `mod name { items }` or `mod name;`.
    Mod {
        /// Token index of the name ident.
        name: usize,
        /// Nested items for inline modules.
        items: Vec<Item>,
    },
    /// `impl … { items }` / `trait … { items }`: the header token range
    /// plus the member items.
    Container {
        /// Header tokens (`impl`/`trait` through the opening `{`).
        header: (usize, usize),
        /// Member items.
        items: Vec<Item>,
    },
    /// `struct` / `enum` / `union`: name kept, every other token (fields,
    /// generics) in the range for type-position scans.
    Adt {
        /// Token index of the name ident, when present.
        name: Option<usize>,
    },
    /// `static [mut] NAME: …` — mutability is what `interior-mutability`
    /// needs.
    Static {
        /// True for `static mut`.
        mutable: bool,
    },
    /// Anything else (`use`, `const`, `type`, `extern`, item-level macro
    /// invocations, stray tokens): held as its token range only.
    Verbatim,
}

/// A `{ … }` block: the statements/expressions inside, plus the token
/// range including both braces.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Parsed statements and trailing expression, in order.
    pub exprs: Vec<Expr>,
    /// Token index of the opening `{`.
    pub lo: usize,
    /// One past the closing `}`.
    pub hi: usize,
}

/// An expression node. Every node records its token range `lo..hi`;
/// child ranges nest inside the parent's.
#[derive(Debug, Clone)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// First token index.
    pub lo: usize,
    /// One past the last token.
    pub hi: usize,
}

/// The expression forms the rules inspect.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// `a::b::c` (or a lone ident): token indices of the segment idents.
    Path(Vec<usize>),
    /// A literal token (number, string, char, lifetime).
    Lit,
    /// `recv.name(args)` — token index of the method name ident.
    MethodCall {
        /// The receiver expression.
        recv: Box<Expr>,
        /// Token index of the method-name ident.
        name: usize,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `recv.field` (no call parens) — token index of the field ident.
    Field {
        /// The base expression.
        recv: Box<Expr>,
        /// Token index of the field ident (or tuple index number).
        name: usize,
    },
    /// `callee(args)`.
    Call {
        /// The callee (usually a path).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `path!(…)` / `path![…]` / `path!{…}` — the macro's bang form.
    Macro {
        /// Token indices of the macro path segments.
        path: Vec<usize>,
        /// Expressions parsed from inside the delimiters.
        args: Vec<Expr>,
    },
    /// `expr as Type` — the cast target's token range.
    Cast {
        /// The value being cast.
        expr: Box<Expr>,
        /// Token range of the target type.
        ty: (usize, usize),
    },
    /// `lhs op rhs` for a joined binary operator (`+`, `-`, `<<`, `&&`,
    /// `+=`, `==`, …).
    Binary {
        /// The joined operator text, e.g. `"+"` or `">>="`.
        op: &'static str,
        /// Token index of the operator's first punct.
        op_tok: usize,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A prefix-operator expression: `&x`, `*p`, `-n`, `!b`, `&mut x`.
    Unary {
        /// The operand.
        expr: Box<Expr>,
    },
    /// `for <pat> in <iter> { body }`.
    For {
        /// Pattern token range (between `for` and `in`).
        pat: (usize, usize),
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `let <pat>[: ty] [= init]` — the binding the variable tracker
    /// reads.
    Let {
        /// Token index of the bound name ident, when the pattern is a
        /// simple (possibly `mut`) identifier.
        name: Option<usize>,
        /// Token range of the `: …` type annotation, when present.
        ty: Option<(usize, usize)>,
        /// Initializer expression.
        init: Option<Box<Expr>>,
    },
    /// `if` / `match` / `while` / `loop` / plain `{}` — head expression
    /// (condition or scrutinee) plus every nested block.
    Structured {
        /// Condition / scrutinee / etc., when the form has one.
        head: Option<Box<Expr>>,
        /// Every `{ … }` block the form owns (then/else arms, bodies).
        blocks: Vec<Block>,
    },
    /// `(…)` / `[…]` groups: inner expressions.
    Group {
        /// Comma-separated (or soup) inner expressions.
        exprs: Vec<Expr>,
    },
    /// An unparsed run of at least one token.
    Verbatim,
}

/// Parses `src` into an [`Ast`]. Comments are dropped (pragmas are read
/// separately by the rule engine from the raw token stream).
pub fn parse(src: &str) -> Ast<'_> {
    let toks: Vec<Tok<'_>> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
    let items = {
        let mut p = Parser { toks: &toks, pos: 0 };
        p.items_until(None)
    };
    Ast { toks, items }
}

impl<'a> Ast<'a> {
    /// The token at AST index `i`.
    pub fn tok(&self, i: usize) -> Option<&Tok<'a>> {
        self.toks.get(i)
    }

    /// The text of token `i` (empty for an out-of-range index).
    pub fn text(&self, i: usize) -> &'a str {
        self.toks.get(i).map_or("", |t| t.text)
    }

    /// `(line, col)` of token `i` (1,1 for an out-of-range index).
    pub fn pos(&self, i: usize) -> (u32, u32) {
        self.toks.get(i).map_or((1, 1), |t| (t.line, t.col))
    }

    /// Pretty-prints the AST by structural traversal: items, blocks, and
    /// expressions emit their children in grammatical order with gap
    /// tokens in between, one space between tokens. Re-lexing the output
    /// yields the same token text sequence — the stability property the
    /// parser tests pin.
    pub fn pretty(&self) -> String {
        let mut out = Vec::new();
        for item in &self.items {
            pretty_item(self, item, &mut out);
        }
        out.join(" ")
    }
}

/// Emits `toks[lo..hi]` excluding any index claimed by `skip` ranges.
fn emit_range(ast: &Ast<'_>, lo: usize, hi: usize, skip: &[(usize, usize)], out: &mut Vec<String>) {
    let mut i = lo;
    while i < hi.min(ast.toks.len()) {
        if let Some(&(a, b)) = skip.iter().find(|&&(a, _)| a == i) {
            debug_assert!(b > a && b <= hi);
            i = b;
            continue;
        }
        out.push(ast.toks[i].text.to_string());
        i += 1;
    }
}

fn pretty_item(ast: &Ast<'_>, item: &Item, out: &mut Vec<String>) {
    match &item.kind {
        ItemKind::Fn { body: Some(body), .. } => {
            emit_range(ast, item.lo, body.lo, &[], out);
            pretty_block(ast, body, out);
            emit_range(ast, body.hi, item.hi, &[], out);
        }
        ItemKind::Mod { items, .. } | ItemKind::Container { items, .. } if !items.is_empty() => {
            let first = items.first().map_or(item.hi, |i| i.lo);
            emit_range(ast, item.lo, first, &[], out);
            let mut cursor = first;
            for child in items {
                emit_range(ast, cursor, child.lo, &[], out);
                pretty_item(ast, child, out);
                cursor = child.hi;
            }
            emit_range(ast, cursor, item.hi, &[], out);
        }
        _ => emit_range(ast, item.lo, item.hi, &[], out),
    }
}

fn pretty_block(ast: &Ast<'_>, block: &Block, out: &mut Vec<String>) {
    let mut cursor = block.lo;
    for e in &block.exprs {
        emit_range(ast, cursor, e.lo, &[], out);
        pretty_expr(ast, e, out);
        cursor = e.hi;
    }
    emit_range(ast, cursor, block.hi, &[], out);
}

fn pretty_expr(ast: &Ast<'_>, e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } | ExprKind::Call { callee: recv, args } => {
            pretty_expr(ast, recv, out);
            let mut cursor = recv.hi;
            for a in args {
                emit_range(ast, cursor, a.lo, &[], out);
                pretty_expr(ast, a, out);
                cursor = a.hi;
            }
            emit_range(ast, cursor, e.hi, &[], out);
        }
        ExprKind::Field { recv, .. } => {
            pretty_expr(ast, recv, out);
            emit_range(ast, recv.hi, e.hi, &[], out);
        }
        ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => {
            emit_range(ast, e.lo, expr.lo, &[], out);
            pretty_expr(ast, expr, out);
            emit_range(ast, expr.hi, e.hi, &[], out);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            pretty_expr(ast, lhs, out);
            emit_range(ast, lhs.hi, rhs.lo, &[], out);
            pretty_expr(ast, rhs, out);
            emit_range(ast, rhs.hi, e.hi, &[], out);
        }
        ExprKind::For { iter, body, .. } => {
            emit_range(ast, e.lo, iter.lo, &[], out);
            pretty_expr(ast, iter, out);
            emit_range(ast, iter.hi, body.lo, &[], out);
            pretty_block(ast, body, out);
            emit_range(ast, body.hi, e.hi, &[], out);
        }
        ExprKind::Let { init: Some(init), .. } => {
            emit_range(ast, e.lo, init.lo, &[], out);
            pretty_expr(ast, init, out);
            emit_range(ast, init.hi, e.hi, &[], out);
        }
        ExprKind::Structured { head, blocks } => {
            let mut cursor = e.lo;
            if let Some(h) = head {
                emit_range(ast, cursor, h.lo, &[], out);
                pretty_expr(ast, h, out);
                cursor = h.hi;
            }
            for b in blocks {
                emit_range(ast, cursor, b.lo, &[], out);
                pretty_block(ast, b, out);
                cursor = b.hi;
            }
            emit_range(ast, cursor, e.hi, &[], out);
        }
        ExprKind::Group { exprs } | ExprKind::Macro { args: exprs, .. } => {
            let mut cursor = e.lo;
            for a in exprs {
                emit_range(ast, cursor, a.lo, &[], out);
                pretty_expr(ast, a, out);
                cursor = a.hi;
            }
            emit_range(ast, cursor, e.hi, &[], out);
        }
        ExprKind::Path(_) | ExprKind::Lit | ExprKind::Verbatim | ExprKind::Let { .. } => {
            emit_range(ast, e.lo, e.hi, &[], out);
        }
    }
}

// ---------------------------------------------------------------------------
// The parser proper.
// ---------------------------------------------------------------------------

struct Parser<'t, 'a> {
    toks: &'t [Tok<'a>],
    pos: usize,
}

/// Keywords that introduce an item at statement or module level.
const ITEM_KEYWORDS: [&str; 14] = [
    "fn", "struct", "enum", "union", "impl", "trait", "mod", "use", "static", "const", "type",
    "extern", "pub", "macro_rules",
];

/// Binary operators by descending precedence tier. Joined text (the lexer
/// emits single puncts; the parser re-joins adjacent ones). Assignment
/// and `..`/`..=` sit at the bottom so rule visitors still see both
/// sides.
const BIN_TIERS: &[&[&str]] = &[
    &["*", "/", "%"],
    &["+", "-"],
    &["<<", ">>"],
    &["&"],
    &["^"],
    &["|"],
    &["==", "!=", "<=", ">=", "<", ">"],
    &["&&"],
    &["||"],
    &["..=", ".."],
    &[
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
    ],
];

impl<'t, 'a> Parser<'t, 'a> {
    fn peek(&self, k: usize) -> Option<&'t Tok<'a>> {
        self.toks.get(self.pos + k)
    }

    fn text(&self, k: usize) -> &'a str {
        self.peek(k).map_or("", |t| t.text)
    }

    fn bump(&mut self) -> usize {
        let i = self.pos;
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        i
    }

    /// True when tokens `pos+k` and `pos+k+1` are adjacent in the source
    /// (no whitespace/comment between) — needed to join `<` `<` into `<<`
    /// without gluing `a < -b` into `<-`.
    fn adjacent(&self, k: usize) -> bool {
        match (self.peek(k), self.peek(k + 1)) {
            (Some(a), Some(b)) => a.start + a.text.len() == b.start,
            _ => false,
        }
    }

    /// If the next tokens spell `op` (as adjacent puncts), returns the
    /// number of tokens it spans.
    fn match_op(&self, op: &str) -> Option<usize> {
        let n = op.chars().count();
        for k in 0..n {
            let t = self.peek(k)?;
            if t.kind != TokKind::Punct || t.text.chars().next() != op.chars().nth(k) {
                return None;
            }
            if k + 1 < n && !self.adjacent(k) {
                return None;
            }
        }
        // Reject a partial match of a longer operator: `<<=` must not
        // match as `<<`, `=>` must not match as `=`, `->` not as `-`. One
        // extra adjacent punct char that would extend the operator means
        // this isn't `op`.
        if self.adjacent(n - 1) {
            if let Some(next) = self.peek(n) {
                if next.kind == TokKind::Punct {
                    let longer: String =
                        op.chars().chain(next.text.chars().take(1)).collect();
                    let known = BIN_TIERS.iter().any(|tier| tier.contains(&longer.as_str()))
                        || longer == "=>"
                        || longer == "->";
                    if known {
                        return None;
                    }
                }
            }
        }
        Some(n)
    }

    // -- items -------------------------------------------------------------

    /// Parses items until `closer` (a `}` for module bodies) or EOF.
    fn items_until(&mut self, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(t) = self.peek(0) {
            if closer == Some(t.text) {
                break;
            }
            items.push(self.item());
        }
        items
    }

    /// Parses one item; always consumes at least one token.
    fn item(&mut self) -> Item {
        let lo = self.pos;
        let attrs = self.attrs();
        let vis_pub = self.eat_vis();
        // Modifier keywords before `fn`.
        let mut k = 0;
        while matches!(self.text(k), "const" | "async" | "unsafe" | "extern") {
            // `const` could start `const X: …` instead of `const fn`; only
            // treat it as a modifier when an `fn` eventually follows.
            k += 1;
            if self.text(k).starts_with('"') {
                k += 1; // extern "C"
            }
        }
        let kw_at = k;
        let item = match self.text(kw_at) {
            "fn" => self.fn_item(lo, attrs.clone(), vis_pub, kw_at),
            "mod" if self.peek(kw_at + 1).is_some_and(|t| t.kind == TokKind::Ident) => {
                self.mod_item(lo, attrs.clone(), vis_pub)
            }
            "impl" | "trait" => self.container_item(lo, attrs.clone(), vis_pub),
            "struct" | "enum" | "union" => self.adt_item(lo, attrs.clone(), vis_pub),
            "static" => self.static_item(lo, attrs.clone(), vis_pub),
            _ => self.verbatim_item(lo, attrs.clone(), vis_pub),
        };
        debug_assert!(item.hi > lo || self.pos > lo, "item must consume tokens");
        item
    }

    /// Consumes `#[…]` / `#![…]` attributes.
    fn attrs(&mut self) -> Vec<Attr> {
        let mut attrs = Vec::new();
        while self.text(0) == "#" && (self.text(1) == "[" || (self.text(1) == "!" && self.text(2) == "[")) {
            let lo = self.pos;
            self.bump(); // '#'
            if self.text(0) == "!" {
                self.bump();
            }
            self.skip_balanced("[", "]");
            attrs.push(Attr { lo, hi: self.pos });
        }
        attrs
    }

    /// Consumes a visibility qualifier, returning true when present.
    fn eat_vis(&mut self) -> bool {
        if self.text(0) != "pub" {
            return false;
        }
        self.bump();
        if self.text(0) == "(" {
            self.skip_balanced("(", ")");
        }
        true
    }

    /// Skips one balanced `open…close` group (consumes the `open` too).
    /// Tolerates EOF: an unclosed group runs to the end.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if self.text(0) != open {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn fn_item(&mut self, lo: usize, attrs: Vec<Attr>, vis_pub: bool, kw_at: usize) -> Item {
        for _ in 0..=kw_at {
            self.bump(); // modifiers + `fn`
        }
        let name = if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
            self.bump()
        } else {
            self.pos.saturating_sub(1)
        };
        let sig_lo = self.pos;
        // Signature runs to the body `{` or a `;`. Skip balanced groups
        // so `where F: Fn() -> { … }`-ish token runs can't derail it, and
        // `->` return types with generic `<`s pass through unparsed.
        while let Some(t) = self.peek(0) {
            match t.text {
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "{" => break,
                ";" => break,
                _ => {
                    self.bump();
                }
            }
        }
        let sig_hi = self.pos;
        let body = if self.text(0) == "{" {
            Some(self.block())
        } else {
            if self.text(0) == ";" {
                self.bump();
            }
            None
        };
        Item { attrs, vis_pub, kind: ItemKind::Fn { name, sig: (sig_lo, sig_hi), body }, lo, hi: self.pos }
    }

    fn mod_item(&mut self, lo: usize, attrs: Vec<Attr>, vis_pub: bool) -> Item {
        self.bump(); // `mod`
        let name = self.bump();
        let items = if self.text(0) == "{" {
            self.bump();
            let items = self.items_until(Some("}"));
            if self.text(0) == "}" {
                self.bump();
            }
            items
        } else {
            if self.text(0) == ";" {
                self.bump();
            }
            Vec::new()
        };
        Item { attrs, vis_pub, kind: ItemKind::Mod { name, items }, lo, hi: self.pos }
    }

    fn container_item(&mut self, lo: usize, attrs: Vec<Attr>, vis_pub: bool) -> Item {
        let head_lo = self.pos;
        while let Some(t) = self.peek(0) {
            match t.text {
                "{" => break,
                ";" => {
                    self.bump();
                    return Item {
                        attrs,
                        vis_pub,
                        kind: ItemKind::Container { header: (head_lo, self.pos), items: Vec::new() },
                        lo,
                        hi: self.pos,
                    };
                }
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                _ => {
                    self.bump();
                }
            }
        }
        let header = (head_lo, self.pos);
        if self.text(0) == "{" {
            self.bump();
        }
        let items = self.items_until(Some("}"));
        if self.text(0) == "}" {
            self.bump();
        }
        Item { attrs, vis_pub, kind: ItemKind::Container { header, items }, lo, hi: self.pos }
    }

    fn adt_item(&mut self, lo: usize, attrs: Vec<Attr>, vis_pub: bool) -> Item {
        self.bump(); // struct/enum/union
        let name = self
            .peek(0)
            .is_some_and(|t| t.kind == TokKind::Ident)
            .then(|| self.bump());
        // Body: `{ … }` braced, `( … );` tuple, or `;` unit. Generics and
        // where clauses pass through.
        while let Some(t) = self.peek(0) {
            match t.text {
                "{" => {
                    self.skip_balanced("{", "}");
                    break;
                }
                "(" => {
                    self.skip_balanced("(", ")");
                }
                ";" => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        Item { attrs, vis_pub, kind: ItemKind::Adt { name }, lo, hi: self.pos }
    }

    fn static_item(&mut self, lo: usize, attrs: Vec<Attr>, vis_pub: bool) -> Item {
        self.bump(); // `static`
        let mutable = self.text(0) == "mut";
        while let Some(t) = self.peek(0) {
            match t.text {
                ";" => {
                    self.bump();
                    break;
                }
                "{" => self.skip_balanced("{", "}"),
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                _ => {
                    self.bump();
                }
            }
        }
        Item { attrs, vis_pub, kind: ItemKind::Static { mutable }, lo, hi: self.pos }
    }

    /// Everything else: consume to the next `;` at depth zero, or one
    /// balanced brace group (item macros, `use {…}` trees). Always makes
    /// progress.
    fn verbatim_item(&mut self, lo: usize, attrs: Vec<Attr>, vis_pub: bool) -> Item {
        if self.pos == lo && attrs.is_empty() {
            // Not even an attribute was consumed: take tokens to `;`/`{}`.
        }
        let mut any = self.pos > lo;
        while let Some(t) = self.peek(0) {
            match t.text {
                ";" => {
                    self.bump();
                    any = true;
                    break;
                }
                "{" => {
                    self.skip_balanced("{", "}");
                    any = true;
                    break;
                }
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "}" => break, // stray closer belongs to an enclosing scope
                _ => {
                    self.bump();
                    any = true;
                }
            }
        }
        if !any && self.pos == lo {
            self.bump(); // guarantee progress on pathological input
        }
        Item { attrs, vis_pub, kind: ItemKind::Verbatim, lo, hi: self.pos }
    }

    // -- blocks and statements ----------------------------------------------

    /// Parses a `{ … }` block; the cursor sits on the `{`.
    fn block(&mut self) -> Block {
        let lo = self.pos;
        if self.text(0) == "{" {
            self.bump();
        }
        let mut exprs = Vec::new();
        while let Some(t) = self.peek(0) {
            match t.text {
                "}" => {
                    self.bump();
                    return Block { exprs, lo, hi: self.pos };
                }
                ";" | "," => {
                    self.bump(); // statement / arm separators
                }
                "=" if self.match_op("=>").is_some() => {
                    self.bump();
                    self.bump(); // match-arm arrow: treat as separator
                }
                "#" => {
                    // Statement attributes; a `#` not opening one is soup.
                    let before = self.pos;
                    self.attrs();
                    if self.pos == before {
                        exprs.push(self.expr());
                    }
                }
                _ if ITEM_KEYWORDS.contains(&t.text) && t.text != "pub" && t.text != "const" => {
                    // Nested item (fn-in-fn, local use, mod). `pub` at
                    // statement level would be odd and `const` is usually
                    // a `*const` pointer type fragment; leave those to
                    // the expression parser.
                    let item = self.item();
                    exprs.push(Expr { kind: ExprKind::Verbatim, lo: item.lo, hi: item.hi });
                }
                _ => exprs.push(self.expr()),
            }
        }
        Block { exprs, lo, hi: self.pos } // unterminated: to EOF
    }

    // -- expressions ---------------------------------------------------------

    /// Parses one expression; always consumes at least one token.
    fn expr(&mut self) -> Expr {
        let before = self.pos;
        let e = self.binary(BIN_TIERS.len());
        if self.pos == before {
            let lo = self.bump();
            return Expr { kind: ExprKind::Verbatim, lo, hi: self.pos };
        }
        e
    }

    /// Precedence-climbing over [`BIN_TIERS`]; `tier` is the highest tier
    /// index allowed (tiers bind looser as the index grows).
    fn binary(&mut self, tier: usize) -> Expr {
        if tier == 0 {
            return self.unary();
        }
        let mut lhs = self.binary(tier - 1);
        loop {
            let ops = BIN_TIERS[tier - 1];
            let Some((op, n)) = ops.iter().find_map(|&op| self.match_op(op).map(|n| (op, n)))
            else {
                return lhs;
            };
            // `<` heuristics: `Foo < Bar >` generics are rare in expr
            // position (turbofish is required), so treating `<` as
            // comparison is safe for rule purposes.
            let op_tok = self.pos;
            for _ in 0..n {
                self.bump();
            }
            // A trailing `..`/range or assignment with no RHS (e.g. `x=`
            // at EOF, or `..` before `}`): keep totality, stop cleanly.
            if self.peek(0).is_none()
                || matches!(self.text(0), "}" | ")" | "]" | ";" | ",")
            {
                let hi = self.pos;
                return Expr {
                    kind: ExprKind::Binary {
                        op,
                        op_tok,
                        lhs: Box::new(lhs.clone()),
                        rhs: Box::new(Expr { kind: ExprKind::Verbatim, lo: hi, hi }),
                    },
                    lo: lhs.lo,
                    hi,
                };
            }
            let rhs = self.binary(tier - 1);
            let (lo, hi) = (lhs.lo, rhs.hi.max(self.pos));
            lhs = Expr {
                kind: ExprKind::Binary { op, op_tok, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                lo,
                hi,
            };
        }
    }

    fn unary(&mut self) -> Expr {
        let lo = self.pos;
        match self.text(0) {
            "&" | "*" | "-" | "!" => {
                self.bump();
                if self.text(0) == "mut" {
                    self.bump();
                }
                if self.peek(0).is_none() || matches!(self.text(0), "}" | ")" | "]" | ";" | ",") {
                    return Expr { kind: ExprKind::Verbatim, lo, hi: self.pos };
                }
                let inner = self.unary();
                let hi = inner.hi;
                Expr { kind: ExprKind::Unary { expr: Box::new(inner) }, lo, hi }
            }
            _ => self.postfix(),
        }
    }

    /// Parses a primary expression and its postfix chain: `.method(…)`,
    /// `.field`, `(call)`, `[index]`, `?`, `as Type`.
    fn postfix(&mut self) -> Expr {
        let mut e = self.primary();
        loop {
            match self.text(0) {
                "." => {
                    // `.ident`, `.ident(…)`, `.await`, `.0` — but not the
                    // range `..` (two adjacent dots).
                    if self.match_op("..").is_some() || self.match_op("..=").is_some() {
                        return e;
                    }
                    self.bump(); // '.'
                    let name = self.pos;
                    let is_ident = self
                        .peek(0)
                        .is_some_and(|t| matches!(t.kind, TokKind::Ident | TokKind::Num));
                    if !is_ident {
                        // `.` with nothing nameable after it: verbatim.
                        let hi = self.pos;
                        e = Expr { kind: ExprKind::Verbatim, lo: e.lo, hi };
                        continue;
                    }
                    self.bump();
                    // Turbofish: `.collect::<Vec<_>>()`.
                    if self.match_op("::").is_some() {
                        self.bump();
                        self.bump();
                        self.skip_generics();
                    }
                    let lo = e.lo;
                    if self.text(0) == "(" {
                        let args = self.paren_args();
                        let hi = self.pos;
                        e = Expr {
                            kind: ExprKind::MethodCall { recv: Box::new(e), name, args },
                            lo,
                            hi,
                        };
                    } else {
                        let hi = self.pos;
                        e = Expr { kind: ExprKind::Field { recv: Box::new(e), name }, lo, hi };
                    }
                }
                "(" => {
                    let lo = e.lo;
                    let args = self.paren_args();
                    let hi = self.pos;
                    e = Expr { kind: ExprKind::Call { callee: Box::new(e), args }, lo, hi };
                }
                "[" => {
                    let lo = e.lo;
                    self.skip_balanced("[", "]");
                    let hi = self.pos;
                    e = Expr {
                        kind: ExprKind::Field { recv: Box::new(e), name: hi.saturating_sub(1) },
                        lo,
                        hi,
                    };
                }
                "?" => {
                    self.bump();
                    e = Expr { kind: e.kind.clone(), lo: e.lo, hi: self.pos };
                }
                "as" => {
                    self.bump();
                    let ty_lo = self.pos;
                    self.type_tokens();
                    let ty_hi = self.pos;
                    e = Expr {
                        kind: ExprKind::Cast { expr: Box::new(e.clone()), ty: (ty_lo, ty_hi) },
                        lo: e.lo,
                        hi: ty_hi,
                    };
                }
                _ => return e,
            }
        }
    }

    /// Consumes a type: path segments, `&`/`*` prefixes, tuple/array
    /// groups, one balanced `<…>` generic run. Stops before operators and
    /// separators.
    fn type_tokens(&mut self) {
        while matches!(self.text(0), "&" | "*" | "mut" | "dyn" | "impl" | "'static") {
            self.bump();
        }
        if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
            self.bump();
        }
        match self.text(0) {
            "(" => {
                self.skip_balanced("(", ")");
                return;
            }
            "[" => {
                self.skip_balanced("[", "]");
                return;
            }
            _ => {}
        }
        // Path with optional generics per segment.
        loop {
            if !self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
                return;
            }
            self.bump();
            if self.text(0) == "<" {
                self.skip_generics();
            }
            if self.match_op("::").is_some() {
                self.bump();
                self.bump();
                continue;
            }
            return;
        }
    }

    /// Skips one `<…>` angle-bracket group, tolerant of shifts.
    fn skip_generics(&mut self) {
        if self.text(0) != "<" {
            return;
        }
        let mut depth = 0i64;
        let mut budget = 256usize; // generics runs are short; stay total
        while let Some(t) = self.peek(0) {
            match t.text {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                ";" | "{" => return, // gave up: not a generics run
                _ => {}
            }
            self.bump();
            budget -= 1;
            if budget == 0 {
                return;
            }
        }
    }

    /// Parses `( a, b, … )` call arguments.
    fn paren_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if self.text(0) != "(" {
            return args;
        }
        self.bump();
        while let Some(t) = self.peek(0) {
            match t.text {
                ")" => {
                    self.bump();
                    return args;
                }
                "," => {
                    self.bump();
                }
                _ => args.push(self.expr()),
            }
        }
        args // unterminated: to EOF
    }

    /// Primary expressions. Always consumes at least one token.
    fn primary(&mut self) -> Expr {
        let lo = self.pos;
        let Some(t) = self.peek(0) else {
            return Expr { kind: ExprKind::Verbatim, lo, hi: lo };
        };
        match t.kind {
            TokKind::Num | TokKind::Str | TokKind::Char | TokKind::Lifetime => {
                self.bump();
                Expr { kind: ExprKind::Lit, lo, hi: self.pos }
            }
            TokKind::Punct => match t.text {
                "(" | "[" => {
                    let (open, close) = if t.text == "(" { ("(", ")") } else { ("[", "]") };
                    self.bump();
                    let mut exprs = Vec::new();
                    while let Some(t) = self.peek(0) {
                        if t.text == close {
                            self.bump();
                            break;
                        }
                        if t.text == "," || t.text == ";" {
                            self.bump();
                            continue;
                        }
                        exprs.push(self.expr());
                    }
                    let _ = open;
                    Expr { kind: ExprKind::Group { exprs }, lo, hi: self.pos }
                }
                "{" => {
                    let b = self.block();
                    Expr { kind: ExprKind::Structured { head: None, blocks: vec![b] }, lo, hi: self.pos }
                }
                _ => {
                    self.bump();
                    Expr { kind: ExprKind::Verbatim, lo, hi: self.pos }
                }
            },
            TokKind::Ident => match t.text {
                "let" => self.let_expr(lo),
                "for" => self.for_expr(lo),
                "if" | "while" => self.cond_expr(lo),
                "match" => self.match_expr(lo),
                "loop" => {
                    self.bump();
                    let b = if self.text(0) == "{" { self.block() } else { Block::default() };
                    Expr { kind: ExprKind::Structured { head: None, blocks: vec![b] }, lo, hi: self.pos }
                }
                "return" | "break" | "continue" | "move" | "mut" | "ref" | "else" | "in" | "box"
                | "await" | "async" | "yield" | "do" | "where" => {
                    self.bump();
                    Expr { kind: ExprKind::Verbatim, lo, hi: self.pos }
                }
                _ => self.path_expr(lo),
            },
            _ => {
                self.bump();
                Expr { kind: ExprKind::Verbatim, lo, hi: self.pos }
            }
        }
    }

    /// `let pat [: ty] [= init]` — the terminating `;` belongs to the
    /// enclosing block loop.
    fn let_expr(&mut self, lo: usize) -> Expr {
        self.bump(); // `let`
        if self.text(0) == "mut" {
            self.bump();
        }
        // Simple-ident pattern → tracked name; anything else (tuples,
        // structs, Some(x)) → None, pattern tokens skipped.
        let mut name = None;
        let next_is_path_sep = self.text(1) == ":"
            && self.peek(2).is_some_and(|t| t.text == ":")
            && self.adjacent(1);
        if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident)
            && matches!(self.text(1), ":" | "=" | ";")
            && !next_is_path_sep
        {
            name = Some(self.bump());
        } else {
            // Skip pattern tokens up to `:`/`=`/`;`/EOF at depth 0.
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                match t.text {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ":" | "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                self.bump();
            }
        }
        let ty = if self.text(0) == ":" && self.match_op("::").is_none() {
            self.bump();
            let ty_lo = self.pos;
            self.type_tokens();
            Some((ty_lo, self.pos))
        } else {
            None
        };
        let init = if self.text(0) == "=" && self.match_op("==").is_none() && self.match_op("=>").is_none() {
            self.bump();
            Some(Box::new(self.expr()))
        } else {
            None
        };
        Expr { kind: ExprKind::Let { name, ty, init }, lo, hi: self.pos }
    }

    fn for_expr(&mut self, lo: usize) -> Expr {
        self.bump(); // `for`
        let pat_lo = self.pos;
        while let Some(t) = self.peek(0) {
            if t.text == "in" || t.text == "{" {
                break;
            }
            match t.text {
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                _ => {
                    self.bump();
                }
            }
        }
        let pat = (pat_lo, self.pos);
        if self.text(0) == "in" {
            self.bump();
        }
        let iter = Box::new(self.head_expr());
        let body = if self.text(0) == "{" { self.block() } else { Block::default() };
        Expr { kind: ExprKind::For { pat, iter, body }, lo, hi: self.pos }
    }

    /// `if cond { } [else if …] [else { }]` and `while cond { }`.
    fn cond_expr(&mut self, lo: usize) -> Expr {
        self.bump(); // `if` / `while`
        if self.text(0) == "let" {
            // `if let pat = expr`: skip the pattern to `=`.
            self.bump();
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" if depth == 0 && self.match_op("==").is_none() => {
                        self.bump();
                        break;
                    }
                    "{" if depth == 0 => break,
                    _ => {}
                }
                self.bump();
            }
        }
        let head = Box::new(self.head_expr());
        let mut blocks = Vec::new();
        if self.text(0) == "{" {
            blocks.push(self.block());
        }
        while self.text(0) == "else" {
            self.bump();
            if self.text(0) == "if" {
                let nested = self.cond_expr(self.pos);
                if let ExprKind::Structured { blocks: mut inner, .. } = nested.kind {
                    blocks.append(&mut inner);
                }
            } else if self.text(0) == "{" {
                blocks.push(self.block());
            } else {
                break;
            }
        }
        Expr { kind: ExprKind::Structured { head: Some(head), blocks }, lo, hi: self.pos }
    }

    fn match_expr(&mut self, lo: usize) -> Expr {
        self.bump(); // `match`
        let head = Box::new(self.head_expr());
        let blocks = if self.text(0) == "{" { vec![self.block()] } else { Vec::new() };
        Expr { kind: ExprKind::Structured { head: Some(head), blocks }, lo, hi: self.pos }
    }

    /// A condition/scrutinee/iterator expression: like [`Parser::expr`]
    /// but a `{` never starts a primary (it opens the body instead).
    fn head_expr(&mut self) -> Expr {
        if self.text(0) == "{" || self.peek(0).is_none() {
            let lo = self.pos;
            return Expr { kind: ExprKind::Verbatim, lo, hi: lo };
        }
        // Structs literals in heads are rare and `match x {` must not eat
        // the body; the postfix chain already refuses bare `{`.
        self.expr()
    }

    /// A path `a::b::c`, possibly ending as a macro call `p!(…)` or left
    /// for the postfix parser to extend into calls/method chains.
    fn path_expr(&mut self, lo: usize) -> Expr {
        let mut segs = vec![self.bump()];
        loop {
            if self.match_op("::").is_some() {
                self.bump();
                self.bump();
                if self.text(0) == "<" {
                    // `Vec::<u8>::new` turbofish inside a path.
                    self.skip_generics();
                    continue;
                }
                if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
                    segs.push(self.bump());
                    continue;
                }
                if self.text(0) == "{" {
                    // `use`-tree-ish braces in expr position: verbatim.
                    self.skip_balanced("{", "}");
                }
                break;
            }
            break;
        }
        if self.text(0) == "!" && self.match_op("!=").is_none() {
            // Macro call: `path!( … )` / `![…]` / `!{…}`.
            self.bump();
            let args = match self.text(0) {
                "(" => {
                    let mut args = Vec::new();
                    self.bump();
                    while let Some(t) = self.peek(0) {
                        match t.text {
                            ")" => {
                                self.bump();
                                break;
                            }
                            "," | ";" => {
                                self.bump();
                            }
                            _ => args.push(self.expr()),
                        }
                    }
                    args
                }
                "[" | "{" => {
                    let (open, close) = if self.text(0) == "[" { ("[", "]") } else { ("{", "}") };
                    let mut args = Vec::new();
                    self.bump();
                    while let Some(t) = self.peek(0) {
                        match t.text {
                            x if x == close => {
                                self.bump();
                                break;
                            }
                            "," | ";" => {
                                self.bump();
                            }
                            "(" => self.skip_balanced("(", ")"),
                            _ => args.push(self.expr()),
                        }
                    }
                    let _ = open;
                    args
                }
                _ => Vec::new(),
            };
            return Expr { kind: ExprKind::Macro { path: segs, args }, lo, hi: self.pos };
        }
        Expr { kind: ExprKind::Path(segs), lo, hi: self.pos }
    }
}

// ---------------------------------------------------------------------------
// Traversal helpers for the rule engine.
// ---------------------------------------------------------------------------

/// Context handed to expression visitors.
#[derive(Debug, Clone, Copy)]
pub struct VisitCx<'i> {
    /// The innermost enclosing `fn` item, when any.
    pub enclosing_fn: Option<&'i Item>,
    /// True inside a `#[cfg(test)]` item (directly or via an ancestor).
    pub in_cfg_test: bool,
}

/// True when any attribute in `attrs` is exactly `#[cfg(test)]`.
pub fn has_cfg_test(ast: &Ast<'_>, attrs: &[Attr]) -> bool {
    attrs.iter().any(|a| {
        let texts: Vec<&str> = (a.lo..a.hi).map(|i| ast.text(i)).collect();
        texts == ["#", "[", "cfg", "(", "test", ")", "]"]
    })
}

/// Walks every item (depth-first), invoking `f` with the item and whether
/// a `#[cfg(test)]` ancestor (or the item itself) marks it test-only.
pub fn walk_items<'i>(ast: &Ast<'_>, items: &'i [Item], in_test: bool, f: &mut impl FnMut(&'i Item, bool)) {
    for item in items {
        let test_here = in_test || has_cfg_test(ast, &item.attrs);
        f(item, test_here);
        match &item.kind {
            ItemKind::Mod { items, .. } | ItemKind::Container { items, .. } => {
                walk_items(ast, items, test_here, f);
            }
            _ => {}
        }
    }
}

/// Walks every expression under `items` (bodies, nested blocks, args),
/// invoking `f` with the [`VisitCx`] of the innermost function.
pub fn walk_exprs<'i>(
    ast: &Ast<'_>,
    items: &'i [Item],
    f: &mut impl FnMut(&'i Expr, VisitCx<'i>),
) {
    fn items_rec<'i>(
        ast: &Ast<'_>,
        items: &'i [Item],
        in_test: bool,
        f: &mut impl FnMut(&'i Expr, VisitCx<'i>),
    ) {
        for item in items {
            let test_here = in_test || has_cfg_test(ast, &item.attrs);
            match &item.kind {
                ItemKind::Fn { body: Some(body), .. } => {
                    let cx = VisitCx { enclosing_fn: Some(item), in_cfg_test: test_here };
                    block_rec(body, cx, f);
                }
                ItemKind::Mod { items, .. } | ItemKind::Container { items, .. } => {
                    items_rec(ast, items, test_here, f);
                }
                _ => {}
            }
        }
    }

    fn block_rec<'i>(
        block: &'i Block,
        cx: VisitCx<'i>,
        f: &mut impl FnMut(&'i Expr, VisitCx<'i>),
    ) {
        for e in &block.exprs {
            expr_rec(e, cx, f);
        }
    }

    fn expr_rec<'i>(e: &'i Expr, cx: VisitCx<'i>, f: &mut impl FnMut(&'i Expr, VisitCx<'i>)) {
        f(e, cx);
        match &e.kind {
            ExprKind::MethodCall { recv, args, .. } => {
                expr_rec(recv, cx, f);
                for a in args {
                    expr_rec(a, cx, f);
                }
            }
            ExprKind::Call { callee, args } => {
                expr_rec(callee, cx, f);
                for a in args {
                    expr_rec(a, cx, f);
                }
            }
            ExprKind::Field { recv, .. } => expr_rec(recv, cx, f),
            ExprKind::Macro { args, .. } | ExprKind::Group { exprs: args } => {
                for a in args {
                    expr_rec(a, cx, f);
                }
            }
            ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => expr_rec(expr, cx, f),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr_rec(lhs, cx, f);
                expr_rec(rhs, cx, f);
            }
            ExprKind::For { iter, body, .. } => {
                expr_rec(iter, cx, f);
                block_rec(body, cx, f);
            }
            ExprKind::Let { init, .. } => {
                if let Some(init) = init {
                    expr_rec(init, cx, f);
                }
            }
            ExprKind::Structured { head, blocks } => {
                if let Some(h) = head {
                    expr_rec(h, cx, f);
                }
                for b in blocks {
                    block_rec(b, cx, f);
                }
            }
            ExprKind::Path(_) | ExprKind::Lit | ExprKind::Verbatim => {}
        }
    }

    items_rec(ast, items, false, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fn_body(src: &str) -> (Ast<'_>, Vec<String>) {
        let ast = parse(src);
        let mut shapes = Vec::new();
        walk_exprs(&ast, &ast.items.clone(), &mut |e, _| {
            shapes.push(shape(&ast, e));
        });
        (ast, shapes)
    }

    fn shape(ast: &Ast<'_>, e: &Expr) -> String {
        match &e.kind {
            ExprKind::Path(segs) => {
                format!("path:{}", segs.iter().map(|&i| ast.text(i)).collect::<Vec<_>>().join("::"))
            }
            ExprKind::MethodCall { name, .. } => format!("method:{}", ast.text(*name)),
            ExprKind::Call { .. } => "call".into(),
            ExprKind::Macro { path, .. } => {
                format!("macro:{}", path.iter().map(|&i| ast.text(i)).collect::<Vec<_>>().join("::"))
            }
            ExprKind::Cast { ty, .. } => {
                format!("cast:{}", (ty.0..ty.1).map(|i| ast.text(i)).collect::<Vec<_>>().join(""))
            }
            ExprKind::Binary { op, .. } => format!("bin:{op}"),
            ExprKind::For { .. } => "for".into(),
            ExprKind::Let { name, .. } => format!("let:{}", name.map_or("_", |i| ast.text(i))),
            ExprKind::Field { name, .. } => format!("field:{}", ast.text(*name)),
            _ => "-".into(),
        }
    }

    #[test]
    fn fn_item_with_name_vis_and_body() {
        let ast = parse("pub fn answer(x: u64) -> u64 { x }\nfn private() {}\n");
        assert_eq!(ast.items.len(), 2);
        assert!(ast.items[0].vis_pub && !ast.items[1].vis_pub);
        let ItemKind::Fn { name, body, .. } = &ast.items[0].kind else { panic!("not a fn") };
        assert_eq!(ast.text(*name), "answer");
        assert!(body.is_some());
    }

    #[test]
    fn cfg_test_is_structural() {
        let ast = parse("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn real() {}\n");
        let mut seen = Vec::new();
        walk_items(&ast, &ast.items.clone(), false, &mut |item, in_test| {
            if let ItemKind::Fn { name, .. } = &item.kind {
                seen.push((ast.text(*name).to_string(), in_test));
            }
        });
        assert_eq!(seen, vec![("t".to_string(), true), ("real".to_string(), false)]);
    }

    #[test]
    fn method_chain_and_macro() {
        let (_, shapes) = fn_body("fn f() { v.first().unwrap(); panic!(\"boom\"); }");
        assert!(shapes.contains(&"method:unwrap".to_string()), "{shapes:?}");
        assert!(shapes.contains(&"method:first".to_string()), "{shapes:?}");
        assert!(shapes.contains(&"macro:panic".to_string()), "{shapes:?}");
    }

    #[test]
    fn cast_and_binary() {
        let (_, shapes) = fn_body("fn f(cycle: u64) -> u32 { (cycle - start) as u32 }");
        assert!(shapes.contains(&"cast:u32".to_string()), "{shapes:?}");
        assert!(shapes.contains(&"bin:-".to_string()), "{shapes:?}");
    }

    #[test]
    fn shift_ops_join_only_when_adjacent() {
        let (_, shapes) = fn_body("fn f(a: u64, b: u64) { let c = a << b; let d = a < b; }");
        assert!(shapes.contains(&"bin:<<".to_string()), "{shapes:?}");
        assert!(shapes.contains(&"bin:<".to_string()), "{shapes:?}");
    }

    #[test]
    fn for_loop_over_method_call() {
        let (_, shapes) = fn_body("fn f(m: &M) { for (k, v) in m.iter() { use_it(k, v); } }");
        assert!(shapes.contains(&"for".to_string()), "{shapes:?}");
        assert!(shapes.contains(&"method:iter".to_string()), "{shapes:?}");
        assert!(shapes.contains(&"call".to_string()), "{shapes:?}");
    }

    #[test]
    fn let_binding_with_type_and_init() {
        let src = "fn f() { let mut m: HashMap<u64, u64> = HashMap::new(); }";
        let ast = parse(src);
        let mut found = None;
        walk_exprs(&ast, &ast.items.clone(), &mut |e, _| {
            if let ExprKind::Let { name, ty, init } = &e.kind {
                found = Some((
                    name.map(|i| ast.text(i).to_string()),
                    ty.map(|(a, b)| (a..b).map(|i| ast.text(i)).collect::<String>()),
                    init.is_some(),
                ));
            }
        });
        let (name, ty, has_init) = found.expect("let parsed");
        assert_eq!(name.as_deref(), Some("m"));
        assert!(ty.unwrap_or_default().starts_with("HashMap"), "type tokens kept");
        assert!(has_init);
    }

    #[test]
    fn static_mut_is_distinguished() {
        let ast = parse("static mut COUNTER: u64 = 0;\nstatic OK: u64 = 0;\n");
        let muts: Vec<bool> = ast
            .items
            .iter()
            .filter_map(|i| match i.kind {
                ItemKind::Static { mutable } => Some(mutable),
                _ => None,
            })
            .collect();
        assert_eq!(muts, vec![true, false]);
    }

    #[test]
    fn impl_and_mod_bodies_recurse() {
        let src = "impl Foo { pub fn m(&self) { self.x.unwrap(); } }\nmod inner { fn g() {} }";
        let ast = parse(src);
        let mut fns = Vec::new();
        walk_items(&ast, &ast.items.clone(), false, &mut |item, _| {
            if let ItemKind::Fn { name, .. } = &item.kind {
                fns.push((ast.text(*name).to_string(), item.vis_pub));
            }
        });
        assert_eq!(fns, vec![("m".to_string(), true), ("g".to_string(), false)]);
    }

    #[test]
    fn tokens_are_never_lost() {
        // Every token index in [0, len) is covered by some top-level item
        // range, in order.
        for src in [
            "fn f() { let x = 1 + 2; }",
            "struct S { a: u64 }\nenum E { A, B }\nuse std::fmt;\n",
            "impl T for S { fn m() {} }",
            "#[derive(Debug)]\npub struct X;",
            "let orphan = ;;; }} {{",
        ] {
            let ast = parse(src);
            let mut cursor = 0usize;
            for item in &ast.items {
                assert!(item.lo == cursor, "{src:?}: gap before item at {}", item.lo);
                assert!(item.hi > item.lo, "{src:?}: empty item");
                cursor = item.hi;
            }
            assert_eq!(cursor, ast.toks.len(), "{src:?}: trailing tokens lost");
        }
    }

    #[test]
    fn pretty_round_trips_token_text() {
        for src in [
            "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }",
            "fn g() { for (k, v) in map.iter() { total += v; } }",
            "impl S { fn m(&self) -> u32 { self.cycle as u32 } }",
            "fn h() { match x { Some(v) => v, None => 0 }; }",
            "fn e() { if let Some(x) = opt { x } else { 0 }; }",
        ] {
            let ast = parse(src);
            let printed = ast.pretty();
            let orig: Vec<&str> =
                lex(src).into_iter().filter(|t| !t.is_comment()).map(|t| t.text).collect();
            let re: Vec<String> = lex(&printed)
                .into_iter()
                .filter(|t| !t.is_comment())
                .map(|t| t.text.to_string())
                .collect();
            assert_eq!(re, orig, "pretty not stable for {src:?}:\n{printed}");
        }
    }

    #[test]
    fn unterminated_soup_never_panics() {
        for src in ["fn f( {", "impl {", "let x = ", "match {", "fn", "pub", "for x in", "a.b.", "x as"] {
            let ast = parse(src);
            let mut cursor = 0usize;
            for item in &ast.items {
                assert!(item.lo >= cursor && item.hi >= item.lo);
                cursor = item.hi;
            }
        }
    }
}
