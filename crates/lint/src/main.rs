//! The `swque-lint` command-line driver.
//!
//! ```text
//! swque-lint --workspace                 # gate the enclosing workspace
//! swque-lint --root DIR                  # gate an explicit tree
//! swque-lint --workspace --write-baseline  # tighten/record the ratchet
//! swque-lint --explain RULE              # rationale + fixture example
//! SWQUE_JSON=lint.json swque-lint --workspace  # also emit swque-lint-v2
//! ```
//!
//! Exit codes: `0` clean (including ratchet slack, which nags on stderr),
//! `1` findings above baseline or a malformed baseline, `2` usage/IO
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use swque_lint::baseline::{ratchet, Baseline};
use swque_lint::report::report_json;
use swque_lint::rules::{explain, RULES};
use swque_lint::{find_workspace_root, scan_workspace};

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    workspace: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    json: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: swque-lint (--workspace | --root DIR) \
         [--baseline FILE] [--write-baseline] [--json FILE]\n\
         \x20      swque-lint --explain RULE"
    );
    ExitCode::from(2)
}

/// Handles `--explain RULE`: prints the rule's rationale (what it guards,
/// a `bad:` example, a `fix:`) or, for an unknown rule, the rule list.
fn run_explain(rule: &str) -> ExitCode {
    match explain(rule) {
        Some(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("swque-lint: unknown rule {rule:?}; known rules:");
            for r in RULES {
                eprintln!("  {r}");
            }
            ExitCode::from(2)
        }
    }
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        root: None,
        workspace: false,
        baseline: None,
        write_baseline: false,
        json: std::env::var_os("SWQUE_JSON").filter(|v| !v.is_empty()).map(PathBuf::from),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(rule) = it.next() else { return Err(usage()) };
                return Err(run_explain(&rule));
            }
            "--workspace" => args.workspace = true,
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--baseline" => args.baseline = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--write-baseline" => args.write_baseline = true,
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            _ => return Err(usage()),
        }
    }
    if args.root.is_none() && !args.workspace {
        return Err(usage());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("swque-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("swque-lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let scan = match scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swque-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let counts = scan.counts();

    let baseline_path = args.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.json"));
    if args.write_baseline {
        let baseline = Baseline::from_counts(&counts);
        let text = format!("{}\n", baseline.to_json());
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("swque-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("swque-lint: wrote baseline {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("swque-lint: {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Baseline::default(), // no baseline file: zero debt allowed
    };

    let verdict = ratchet(&counts, &baseline);

    if let Some(path) = &args.json {
        let doc = format!("{}\n", report_json(&scan, &counts, &baseline));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("swque-lint: SWQUE_JSON: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[swque-lint] wrote {}", path.display());
    }

    // Per-rule summary, always.
    println!("swque-lint: {} file(s), {} suppressed finding(s)", scan.files_scanned, scan.suppressed);
    for (rule, &count) in &counts {
        let allowed = baseline.allowed(rule);
        let mark = if count > allowed {
            "FAIL"
        } else if count < allowed {
            "slack"
        } else {
            "ok"
        };
        println!("  {rule:<20} {count:>4} / baseline {allowed:>4}  {mark}");
    }

    // Detailed findings only for rules over their allowance: with held
    // debt the full list would drown the one regression that matters.
    for (rule, count, allowed) in &verdict.exceeded {
        eprintln!("swque-lint: rule {rule}: {count} finding(s) exceed baseline {allowed}:");
        for f in scan.findings.iter().filter(|f| f.rule == rule) {
            eprintln!("  {f}");
        }
    }
    for (rule, count, allowed) in &verdict.slack {
        eprintln!(
            "swque-lint: nag: rule {rule} is at {count}, below baseline {allowed} — \
             tighten with `swque-lint --workspace --write-baseline`"
        );
    }

    if verdict.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
