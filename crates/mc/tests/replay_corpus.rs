//! The committed counterexample corpus under `tests/replays/`.
//!
//! Every `.replay` file re-executes against the real queues/controller
//! and must honor its `expect=` contract, so each counterexample the
//! checker ever minimized stays a live regression test. The `MANIFEST`
//! ratchet pins each trace's content digest, mirroring the lint-baseline
//! one-way design: a trace can be *appended* (add the file plus its
//! MANIFEST line), but silently altering or dropping a committed trace
//! fails here.

use std::collections::BTreeMap;
use std::path::PathBuf;

use swque_core::fnv1a64;
use swque_core::replay::Replay;
use swque_mc::check_replay;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("replays")
}

/// The trace line of a corpus file: the first non-empty, non-`#` line.
fn trace_line(text: &str) -> &str {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .expect("corpus file holds no trace line")
}

/// `name -> file content` for every `.replay` file on disk, sorted.
fn corpus_files() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/replays exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "replay") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable corpus file");
            out.insert(name, text);
        }
    }
    assert!(!out.is_empty(), "corpus must not be empty");
    out
}

#[test]
fn every_committed_replay_reexecutes_and_honors_its_expectation() {
    for (name, text) in corpus_files() {
        let replay = Replay::parse(trace_line(&text))
            .unwrap_or_else(|e| panic!("{name}: {}", e.message));
        let outcome =
            check_replay(&replay).unwrap_or_else(|e| panic!("{name}: {e}"));
        match &replay.expect {
            Some(property) => {
                let v = outcome.violation.as_ref().expect("check_replay enforced this");
                assert_eq!(&v.property, property, "{name}");
            }
            None => assert!(outcome.violation.is_none(), "{name}"),
        }
    }
}

#[test]
fn manifest_ratchet_pins_every_trace() {
    let manifest =
        std::fs::read_to_string(corpus_dir().join("MANIFEST")).expect("MANIFEST exists");
    let mut pinned: BTreeMap<&str, u64> = BTreeMap::new();
    for line in manifest.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (digest, name) = line.split_once(' ').expect("MANIFEST line: `<digest> <file>`");
        let digest = u64::from_str_radix(digest, 16)
            .unwrap_or_else(|_| panic!("MANIFEST digest for {name} is not hex"));
        assert!(pinned.insert(name, digest).is_none(), "duplicate MANIFEST entry {name}");
    }

    let files = corpus_files();
    // Expected MANIFEST body, printed whole on any mismatch so appending
    // a new trace is a copy-paste.
    let expected: String = files
        .iter()
        .map(|(name, text)| format!("{:016x} {name}\n", fnv1a64(text.as_bytes())))
        .collect();
    for (name, text) in &files {
        let digest = fnv1a64(text.as_bytes());
        let pin = pinned.get(name.as_str()).unwrap_or_else(|| {
            panic!("{name} is not in MANIFEST; expected body:\n{expected}")
        });
        assert_eq!(
            *pin,
            digest,
            "{name}: content digest moved — committed traces are append-only; \
             expected body:\n{expected}"
        );
    }
    for name in pinned.keys() {
        assert!(
            files.contains_key(*name),
            "{name} pinned in MANIFEST but missing on disk — committed traces are append-only"
        );
    }
}
