//! Breadth-first state-space exploration and counterexample shrinking.
//!
//! The explorer is generic over [`Harness`] — anything that can list its
//! enabled events, apply one (checking properties), and produce a
//! canonical dedup key. Exploration is breadth-first so the first
//! violation found is already depth-minimal; [`minimize`] then shrinks it
//! event-wise (ddmin-style greedy deletion) to a locally 1-minimal trace.

use std::collections::BTreeSet;

use swque_core::replay::Event;

use crate::harness::Violation;

/// A transition system the explorer can walk.
pub trait Harness: Clone {
    /// Events worth trying from the current state (preconditions and
    /// symmetry reduction applied).
    fn enabled_events(&self) -> Vec<Event>;
    /// Applies one event, checking every property along the way.
    fn apply(&mut self, event: Event) -> Result<(), Violation>;
    /// Canonical dedup key of the current state (see `canon`).
    fn state_key(&self) -> u64;
}

/// A property violation found during exploration, with the event path
/// that reaches it from the initial state.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Stable property name.
    pub property: &'static str,
    /// Human-readable account from the harness.
    pub detail: String,
    /// Events from the initial state up to and including the violating
    /// one.
    pub events: Vec<Event>,
}

/// Outcome of one bounded exploration.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Distinct canonical states visited (including the initial state).
    pub states: u64,
    /// Deepest level at which a new state was discovered.
    pub deepest: u64,
    /// New states reachable one step past the depth bound. Zero means the
    /// state space is *closed*: the bound exhausted it.
    pub frontier: u64,
    /// First violation found (depth-minimal), if any.
    pub violation: Option<FoundViolation>,
}

impl RunOutcome {
    /// True when the depth bound exhausted the reachable state space.
    pub fn closed(&self) -> bool {
        self.frontier == 0
    }
}

/// Explores every reachable interleaving from `root` up to `depth`
/// events, stopping at the first property violation.
///
/// States one step beyond the bound are still *checked* (their properties
/// run) but not expanded; they are tallied in
/// [`frontier`](RunOutcome::frontier) if unvisited, so `frontier == 0`
/// certifies exhaustion rather than merely "we stopped looking".
pub fn explore<H: Harness>(root: &H, depth: u64) -> RunOutcome {
    let mut visited = BTreeSet::new();
    visited.insert(root.state_key());
    let mut level: Vec<(H, Vec<Event>)> = vec![(root.clone(), Vec::new())];
    let mut outcome = RunOutcome { states: 1, deepest: 0, frontier: 0, violation: None };

    for current_depth in 0..=depth {
        let expanding = std::mem::take(&mut level);
        let at_bound = current_depth == depth;
        for (state, path) in &expanding {
            for event in state.enabled_events() {
                let mut next = state.clone();
                if let Err(v) = next.apply(event) {
                    let mut events = path.clone();
                    events.push(event);
                    outcome.violation =
                        Some(FoundViolation { property: v.property, detail: v.detail, events });
                    return outcome;
                }
                let key = next.state_key();
                if !visited.insert(key) {
                    continue;
                }
                if at_bound {
                    outcome.frontier += 1;
                    continue;
                }
                outcome.states += 1;
                outcome.deepest = current_depth + 1;
                let mut events = path.clone();
                events.push(event);
                level.push((next, events));
            }
        }
        if level.is_empty() && !at_bound {
            // Fixpoint before the bound: nothing left to expand, so the
            // frontier is provably empty.
            break;
        }
    }
    outcome
}

/// Runs `events` against a fresh harness; returns the violation that
/// ends the trace, if any.
fn run_trace<H: Harness>(fresh: &H, events: &[Event]) -> Option<Violation> {
    let mut state = fresh.clone();
    for event in events {
        if let Err(v) = state.apply(*event) {
            return Some(v);
        }
    }
    None
}

/// Greedily shrinks `events` while a fresh harness still violates
/// `property`, to a locally 1-minimal trace (removing any single event
/// no longer reproduces the violation).
pub fn minimize<H: Harness>(fresh: &H, events: &[Event], property: &str) -> Vec<Event> {
    let mut trace: Vec<Event> = events.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        let mut index = 0;
        while index < trace.len() {
            let mut candidate = trace.clone();
            candidate.remove(index);
            let still_fails =
                run_trace(fresh, &candidate).map(|v| v.property == property).unwrap_or(false);
            if still_fails {
                trace = candidate;
                changed = true;
            } else {
                index += 1;
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic system: a counter over {0..limit} where Wakeup(0)
    /// increments, Flush resets, and reaching `trip` is a violation.
    #[derive(Clone)]
    struct Counter {
        value: u64,
        limit: u64,
        trip: Option<u64>,
    }

    impl Harness for Counter {
        fn enabled_events(&self) -> Vec<Event> {
            vec![Event::Wakeup(0), Event::Flush]
        }

        fn apply(&mut self, event: Event) -> Result<(), Violation> {
            match event {
                Event::Wakeup(_) => {
                    self.value = (self.value + 1).min(self.limit);
                    if Some(self.value) == self.trip {
                        return Err(Violation {
                            property: "trip",
                            detail: format!("hit {}", self.value),
                        });
                    }
                    Ok(())
                }
                _ => {
                    self.value = 0;
                    Ok(())
                }
            }
        }

        fn state_key(&self) -> u64 {
            self.value
        }
    }

    #[test]
    fn closes_a_finite_space_and_counts_states() {
        let outcome = explore(&Counter { value: 0, limit: 3, trip: None }, 10);
        assert_eq!(outcome.states, 4); // values 0..=3
        assert!(outcome.closed());
        assert!(outcome.violation.is_none());
        assert_eq!(outcome.deepest, 3);
    }

    #[test]
    fn reports_an_open_frontier_when_the_bound_is_too_small() {
        let outcome = explore(&Counter { value: 0, limit: 5, trip: None }, 2);
        assert!(!outcome.closed());
        assert!(outcome.frontier > 0);
    }

    #[test]
    fn finds_a_depth_minimal_violation() {
        let root = Counter { value: 0, limit: 5, trip: Some(3) };
        let outcome = explore(&root, 10);
        let v = outcome.violation.expect("must trip");
        assert_eq!(v.property, "trip");
        assert_eq!(v.events.len(), 3, "BFS finds the shortest path");
    }

    #[test]
    fn minimize_strips_redundant_events() {
        let root = Counter { value: 0, limit: 5, trip: Some(2) };
        // A wasteful trace: increments interleaved with resets.
        let fat = vec![
            Event::Wakeup(0),
            Event::Flush,
            Event::Wakeup(0),
            Event::Wakeup(0),
        ];
        assert!(run_trace(&root, &fat).is_some());
        let slim = minimize(&root, &fat, "trip");
        assert_eq!(slim.len(), 2);
        assert!(run_trace(&root, &slim).is_some());
    }
}
