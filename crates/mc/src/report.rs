//! The `swque-mc-v1` machine-readable report.
//!
//! One checker invocation produces one report: a run record per explored
//! target (kind × capacity × width × depth × injection) with its state
//! count, closure status, and any violations — each violation carrying
//! the minimized replay string. `swque-bench check_json` validates this
//! schema; `scripts/verify.sh` gates on it.

use swque_trace::json::Json;

use crate::explore::RunOutcome;

/// Schema tag of the checker's JSON report.
pub const MC_SCHEMA: &str = "swque-mc-v1";

/// One violation in a run record.
#[derive(Debug, Clone)]
pub struct McViolation {
    /// Stable property name.
    pub property: String,
    /// Human-readable account.
    pub detail: String,
    /// Minimized self-contained replay string (`swque-mc-replay-v1 …`).
    pub replay: String,
}

/// One explored target.
#[derive(Debug, Clone)]
pub struct McRun {
    /// Target label: an `IqKind` label or `CTRL`.
    pub target: String,
    /// Queue capacity (0 for the controller).
    pub capacity: usize,
    /// Issue width (0 for the controller).
    pub width: usize,
    /// Depth bound in events.
    pub depth: u64,
    /// Injection name, or `-` for the clean tree.
    pub inject: String,
    /// Distinct canonical states fully explored.
    pub states: u64,
    /// Deepest level at which a new state was discovered.
    pub deepest: u64,
    /// New states one step past the bound (0 = closed).
    pub frontier: u64,
    /// Whether the bound exhausted the reachable state space.
    pub closed: bool,
    /// Violations found (at most one per exploration, by construction).
    pub violations: Vec<McViolation>,
}

impl McRun {
    /// Builds a run record from an exploration outcome (violations are
    /// attached separately once minimized and rendered).
    pub fn from_outcome(
        target: &str,
        capacity: usize,
        width: usize,
        depth: u64,
        inject: Option<&str>,
        outcome: &RunOutcome,
    ) -> McRun {
        McRun {
            target: target.to_string(),
            capacity,
            width,
            depth,
            inject: inject.unwrap_or("-").to_string(),
            states: outcome.states,
            deepest: outcome.deepest,
            frontier: outcome.frontier,
            closed: outcome.closed(),
            violations: Vec::new(),
        }
    }

    fn to_json(&self) -> Json {
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|v| {
                Json::obj([
                    ("property", Json::from(v.property.as_str())),
                    ("detail", Json::from(v.detail.as_str())),
                    ("replay", Json::from(v.replay.as_str())),
                ])
            })
            .collect();
        Json::obj([
            ("target", Json::from(self.target.as_str())),
            ("capacity", Json::from(self.capacity)),
            ("width", Json::from(self.width)),
            ("depth", Json::from(self.depth)),
            ("inject", Json::from(self.inject.as_str())),
            ("states", Json::from(self.states)),
            ("deepest", Json::from(self.deepest)),
            ("frontier", Json::from(self.frontier)),
            ("closed", Json::from(self.closed)),
            ("violations", Json::Arr(violations)),
        ])
    }
}

/// Assembles the full `swque-mc-v1` report.
pub fn report(smoke: bool, runs: &[McRun]) -> Json {
    let total_states: u64 = runs.iter().map(|r| r.states).sum();
    let violations: u64 = runs.iter().map(|r| r.violations.len() as u64).sum();
    Json::obj([
        ("schema", Json::from(MC_SCHEMA)),
        ("smoke", Json::from(smoke)),
        ("runs", Json::Arr(runs.iter().map(McRun::to_json).collect())),
        ("total_states", Json::from(total_states)),
        ("violations", Json::from(violations)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> McRun {
        McRun {
            target: "CIRC-PC".to_string(),
            capacity: 3,
            width: 2,
            depth: 8,
            inject: "-".to_string(),
            states: 412,
            deepest: 7,
            frontier: 0,
            closed: true,
            violations: vec![McViolation {
                property: "pc-age-ordered".to_string(),
                detail: "granted seq 1001 after younger seq 1002".to_string(),
                replay: "swque-mc-replay-v1 kind=CIRC-PC cap=3 width=2 \
                         inject=circ-pc-no-correct expect=pc-age-ordered events=d-.-,s2"
                    .to_string(),
            }],
        }
    }

    #[test]
    fn report_has_the_schema_tag_and_fixed_key_order() {
        let text = report(true, &[sample_run()]).to_string();
        assert!(text.starts_with("{\"schema\":\"swque-mc-v1\",\"smoke\":true,\"runs\":["));
        assert!(text.contains("\"total_states\":412"));
        assert!(text.contains("\"violations\":1"));
    }

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let json = report(false, &[sample_run()]);
        let text = json.to_string();
        let back = swque_trace::json::Json::parse(&text).expect("round trip");
        assert_eq!(back.to_string(), text);
    }
}
