//! Canonicalization of queue `Debug` renders for visited-state
//! deduplication (DESIGN.md §12).
//!
//! [`IssueQueue::state_digest`](swque_core::IssueQueue::state_digest)
//! hashes the *entire* `Debug` render — statistics included — which is the
//! right contract for replay-equivalence checks but far too fine for state
//! enumeration: two architecturally identical queues that got there along
//! different paths differ in their counters, their absolute sequence
//! numbers, and inert bookkeeping like stale waiter registrations. This
//! module rewrites a render into its **canonical architectural form**:
//!
//! * *balanced-masked fields* (`stats`, `waiters`, `trace`, `scratch`,
//!   `old_scratch`) are replaced wholesale: statistics don't influence
//!   future grants, stale waiter entries are skipped at the next broadcast
//!   (their live content is fully determined by the slot sources), and
//!   scratch vectors are rebuilt from scratch each select;
//! * *masked totals* (`retired`, `llc_misses`, `issued`,
//!   `issued_low_priority`, `next_interval_retired`, `last_reset_insts`,
//!   `threshold_reductions`) are monotone counters whose *deltas* the
//!   model checker holds constant — its event alphabet only ever advances
//!   them in fixed interval steps, so states differing only in the
//!   absolute totals are bisimilar within the explored alphabet;
//! * *sequence renaming*: the checker assigns sequence numbers (and
//!   payloads) starting at [`SEQ_BASE`], so any bare integer ≥ `SEQ_BASE`
//!   in a render is a sequence value. Live ones are renamed to their age
//!   rank (`s0` = oldest); stale ones (left in invalidated slots) to `#`.
//!
//! The masking is a *reduction*, not a soundness hazard: deduplication
//! only prunes exploration, every stored state remains concrete, and every
//! property is checked on concrete states before the dedup lookup.

use std::collections::BTreeMap;

/// First sequence number the model checker assigns. Must exceed every
/// other bare integer a queue render can contain (positions, widths, tags,
/// small parameters) so sequence renaming can identify its targets.
pub const SEQ_BASE: u64 = 1000;

/// Fields whose whole value is replaced by `_` (see module docs).
const BALANCED_MASKED: [&str; 5] = ["stats", "waiters", "trace", "scratch", "old_scratch"];

/// Monotone-total fields whose numeric value is replaced by `#`.
const VALUE_MASKED: [&str; 7] = [
    "retired",
    "llc_misses",
    "issued",
    "issued_low_priority",
    "next_interval_retired",
    "last_reset_insts",
    "threshold_reductions",
];

/// Skips a balanced `Debug` value starting at `i` (just past `: `);
/// returns the index of the first character after it (the `,` or closing
/// bracket stays unconsumed).
fn skip_balanced(bytes: &[u8], mut i: usize) -> usize {
    let mut depth: u64 = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' | b'(' => depth += 1,
            b'}' | b']' | b')' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b',' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Rewrites `render` (a `{:?}` render) into canonical architectural form.
///
/// `live` maps each live sequence number to its age rank (0 = oldest);
/// the caller builds it from its shadow model. See the module docs for
/// the three rewrite classes.
pub fn canonical_render(render: &str, live: &BTreeMap<u64, u64>) -> String {
    let bytes = render.as_bytes();
    let mut out = String::with_capacity(render.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &render[start..i];
            let is_field = bytes.get(i) == Some(&b':') && bytes.get(i + 1) == Some(&b' ');
            if is_field && BALANCED_MASKED.contains(&word) {
                out.push_str(word);
                out.push_str(": _");
                i = skip_balanced(bytes, i + 2);
                continue;
            }
            if is_field && VALUE_MASKED.contains(&word) {
                out.push_str(word);
                out.push_str(": #");
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                continue;
            }
            out.push_str(word);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let part_of_float = bytes.get(i) == Some(&b'.')
                || (start > 0 && bytes[start.saturating_sub(1)] == b'.');
            let token = &render[start..i];
            if !part_of_float {
                if let Ok(value) = token.parse::<u64>() {
                    if value >= SEQ_BASE {
                        match live.get(&value) {
                            Some(rank) => {
                                out.push('s');
                                out.push_str(&rank.to_string());
                            }
                            None => out.push('#'),
                        }
                        continue;
                    }
                }
            }
            out.push_str(token);
            continue;
        }
        out.push(c as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn masks_stats_and_waiters_wholesale() {
        let render = "Q { head: 1, stats: IqStats { issued: 3, selects: 9 }, \
                      waiters: [[0, 2], []], region: 2 }";
        assert_eq!(
            canonical_render(render, &live(&[])),
            "Q { head: 1, stats: _, waiters: _, region: 2 }"
        );
    }

    #[test]
    fn masks_monotone_totals_but_not_small_fields() {
        let render = "S { next_interval_retired: 20000, interval: IntervalStart { retired: \
                      10000, llc_misses: 100 }, head: 3 }";
        assert_eq!(
            canonical_render(render, &live(&[])),
            "S { next_interval_retired: #, interval: IntervalStart { retired: #, llc_misses: \
             # }, head: 3 }"
        );
    }

    #[test]
    fn renames_live_seqs_and_masks_stale_ones() {
        let render = "Slot { seq: 1002, payload: 1002 }, Slot { seq: 1000, payload: 1000 }";
        assert_eq!(
            canonical_render(render, &live(&[(1002, 1)])),
            "Slot { seq: s1, payload: s1 }, Slot { seq: #, payload: # }"
        );
    }

    #[test]
    fn leaves_floats_and_small_integers_alone() {
        let render = "C { flpi_threshold_age: 0.04, mpki_threshold: 1.0, big: 1234.5, tag: 1 }";
        assert_eq!(canonical_render(render, &live(&[])), render);
    }

    #[test]
    fn two_paths_to_the_same_architecture_canonicalize_equal() {
        // Same architectural state, different absolute seqs and counters.
        let a = "Q { slots: [Slot { seq: 1000, payload: 1000 }], stats: IqStats { issued: 0 } }";
        let b = "Q { slots: [Slot { seq: 1037, payload: 1037 }], stats: IqStats { issued: 9 } }";
        assert_eq!(
            canonical_render(a, &live(&[(1000, 0)])),
            canonical_render(b, &live(&[(1037, 0)])),
        );
    }
}
