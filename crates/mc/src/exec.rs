//! Re-execution of `swque-mc-replay-v1` traces.
//!
//! A replay string is a self-contained counterexample: it names the
//! target, the scope, the injection to plant, the property it is expected
//! to violate, and the event trace. [`run_replay`] rebuilds the exact
//! harness and replays the events; [`check_replay`] additionally enforces
//! the `expect=` contract, which is what the committed corpus under
//! `tests/replays/` runs through forever.

use swque_core::replay::{Replay, ReplayTarget};

use crate::ctrl::CtrlHarness;
use crate::explore::Harness;
use crate::harness::{Injection, QueueHarness, Violation};

/// What replaying a trace produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The violation that ended the trace, if any.
    pub violation: Option<Violation>,
    /// Events applied before stopping (the whole trace when clean).
    pub applied: usize,
}

fn parse_inject(replay: &Replay) -> Result<Option<Injection>, String> {
    match &replay.inject {
        None => Ok(None),
        Some(name) => match Injection::parse(name) {
            Some(inject) => Ok(Some(inject)),
            None => Err(format!("unknown injection `{name}`")),
        },
    }
}

fn run_events<H: Harness>(mut harness: H, replay: &Replay) -> ReplayOutcome {
    for (index, event) in replay.events.iter().enumerate() {
        if let Err(violation) = harness.apply(*event) {
            return ReplayOutcome { violation: Some(violation), applied: index + 1 };
        }
    }
    ReplayOutcome { violation: None, applied: replay.events.len() }
}

/// Rebuilds the harness a replay names and re-executes its events.
///
/// Errors are *setup* problems (unknown injection, bad scope); a property
/// violation during the trace is a normal outcome, not an error.
pub fn run_replay(replay: &Replay) -> Result<ReplayOutcome, String> {
    let inject = parse_inject(replay)?;
    match replay.target {
        ReplayTarget::Queue(kind) => {
            let harness = QueueHarness::new(kind, replay.capacity, replay.width, inject)?;
            Ok(run_events(harness, replay))
        }
        ReplayTarget::Controller => {
            let harness = CtrlHarness::new(inject)?;
            Ok(run_events(harness, replay))
        }
    }
}

/// Replays a trace and enforces its `expect=` contract: an expected
/// property must be violated (that property exactly), and a trace without
/// one must replay clean.
pub fn check_replay(replay: &Replay) -> Result<ReplayOutcome, String> {
    let outcome = run_replay(replay)?;
    match (&replay.expect, &outcome.violation) {
        (None, None) => Ok(outcome),
        (None, Some(violation)) => Err(format!(
            "trace expected to replay clean violated {} after {} events: {}",
            violation.property, outcome.applied, violation.detail
        )),
        (Some(expected), None) => {
            Err(format!("trace expected to violate {expected} replayed clean"))
        }
        (Some(expected), Some(violation)) => {
            if &violation.property == expected {
                Ok(outcome)
            } else {
                Err(format!(
                    "trace expected to violate {expected} instead violated {} ({})",
                    violation.property, violation.detail
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_trace_replays_clean() {
        let replay = Replay::parse(
            "swque-mc-replay-v1 kind=SHIFT cap=3 width=2 inject=- expect=- \
             events=d-.-,d0.-,s2,w0,s2",
        )
        .expect("parse");
        let outcome = check_replay(&replay).expect("clean replay");
        assert_eq!(outcome.applied, 5);
        assert!(outcome.violation.is_none());
    }

    #[test]
    fn expect_contract_rejects_a_clean_run_that_promised_a_violation() {
        let replay = Replay::parse(
            "swque-mc-replay-v1 kind=SHIFT cap=3 width=2 inject=- expect=oldest-first \
             events=d-.-,s1",
        )
        .expect("parse");
        let err = check_replay(&replay).unwrap_err();
        assert!(err.contains("replayed clean"), "{err}");
    }

    #[test]
    fn unknown_injection_is_a_setup_error() {
        let replay = Replay::parse(
            "swque-mc-replay-v1 kind=CIRC cap=3 width=2 inject=not-a-bug expect=- events=f",
        )
        .expect("parse");
        assert!(run_replay(&replay).unwrap_err().contains("unknown injection"));
    }

    #[test]
    fn controller_trace_runs_on_the_controller() {
        let replay = Replay::parse(
            "swque-mc-replay-v1 kind=CTRL cap=0 width=0 inject=- expect=- \
             events=e0:50,e0:0,e0:50,r1000000",
        )
        .expect("parse");
        let outcome = check_replay(&replay).expect("clean controller replay");
        assert_eq!(outcome.applied, 4);
    }

    #[test]
    fn target_mismatch_is_the_replay_target_property() {
        // The grammar already rejects mixed traces at parse time, so a
        // mismatch can only be constructed programmatically; the harness
        // still refuses it as a second line of defense.
        use swque_core::replay::Event;
        use swque_core::IqKind;
        let replay = Replay {
            target: ReplayTarget::Queue(IqKind::Circ),
            capacity: 3,
            width: 2,
            inject: None,
            expect: Some("replay-target".to_string()),
            events: vec![Event::Interval { mpki_milli: 0, flpi_milli: 0 }],
        };
        let outcome = check_replay(&replay).expect("expected violation");
        let v = outcome.violation.expect("violation");
        assert_eq!(v.property, "replay-target");
    }
}
