//! `swque-mc` — bounded exhaustive model checking of the issue queues
//! and the SWQUE mode controller.
//!
//! ```text
//! swque-mc [--smoke] [--kind LABEL|CTRL] [--capacity N] [--width N]
//!          [--depth N] [--inject NAME] [--json]
//! ```
//!
//! With no target flags the full matrix runs: every `IqKind` at
//! capacities 2–3, capacity 4 where the space closes in seconds (see
//! `in_matrix`), plus the controller. `--smoke` shrinks the matrix for
//! CI (SWQUE kinds at capacity 2 only). `--inject` plants a named bug
//! (with `--kind`) so `scripts/verify.sh` can prove detection. `--json`
//! emits the `swque-mc-v1` report on stdout (human progress moves to
//! stderr). Exit status: 0 = every run closed its state space with no
//! violations; 1 = a violation was found (counterexamples printed);
//! 2 = usage or setup error, or a clean run failed to close.

use std::process::ExitCode;

use swque_core::replay::{Replay, ReplayTarget};
use swque_core::IqKind;
use swque_mc::{
    check_replay, explore, minimize, report, CtrlHarness, Harness, Injection, McRun, McViolation,
    QueueHarness, RunOutcome,
};

/// One requested exploration.
struct Job {
    target: ReplayTarget,
    capacity: usize,
    width: usize,
    depth: u64,
    inject: Option<Injection>,
}

struct Args {
    smoke: bool,
    json: bool,
    kind: Option<String>,
    capacity: Option<usize>,
    width: Option<usize>,
    depth: Option<u64>,
    inject: Option<String>,
}

fn usage() -> String {
    "usage: swque-mc [--smoke] [--kind LABEL|CTRL] [--capacity N] [--width N] [--depth N] \
     [--inject NAME] [--json]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        json: false,
        kind: None,
        capacity: None,
        width: None,
        depth: None,
        inject: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let value_for = |flag: &str, it: &mut dyn Iterator<Item = String>| {
            it.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => args.json = true,
            "--kind" => args.kind = Some(value_for("--kind", &mut it)?),
            "--capacity" => {
                let v = value_for("--capacity", &mut it)?;
                args.capacity =
                    Some(v.parse().map_err(|_| format!("bad --capacity `{v}`"))?);
            }
            "--width" => {
                let v = value_for("--width", &mut it)?;
                args.width = Some(v.parse().map_err(|_| format!("bad --width `{v}`"))?);
            }
            "--depth" => {
                let v = value_for("--depth", &mut it)?;
                args.depth = Some(v.parse().map_err(|_| format!("bad --depth `{v}`"))?);
            }
            "--inject" => args.inject = Some(value_for("--inject", &mut it)?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Per-kind depth ceilings. The explorer stops at the reachable-set
/// fixpoint, so a generous bound costs nothing once the space closes;
/// measured closure depths (EXPERIMENTS.md) are ≤ 23 events for the
/// single-structure kinds and 62–70 for the SWQUE organizations, whose
/// controller walks a six-value FLPI-threshold ladder (0.04 stepping
/// down by 0.01 to an f64 epsilon, then 0) before the space folds shut.
fn queue_depth(kind: IqKind) -> u64 {
    match kind {
        IqKind::Swque | IqKind::SwqueMulti => 80,
        _ => 32,
    }
}

fn ctrl_depth() -> u64 {
    24 // closes at depth 18: the same threshold ladder, controller-only
}

/// Whether (kind, capacity) belongs to the default matrix. Every kind
/// runs at capacities 2–3; capacity 4 joins for the kinds whose spaces
/// close in seconds. The exclusions are measured, not guessed
/// (EXPERIMENTS.md): AGE-multiAM at capacity 4 reaches ~860k states
/// (minutes of wall time) and the SWQUE kinds multiply their queue space
/// by the controller ladder; `--smoke` further drops the SWQUE kinds to
/// capacity 2 (capacity 3 alone costs ~90 s). Any excluded scope stays
/// reachable explicitly via `--kind`/`--capacity`/`--depth`.
fn in_matrix(smoke: bool, kind: IqKind, capacity: usize) -> bool {
    let swque = matches!(kind, IqKind::Swque | IqKind::SwqueMulti);
    match capacity {
        2 => true,
        3 => !(smoke && swque),
        4 => !smoke && !swque && kind != IqKind::AgeMulti,
        _ => false,
    }
}

fn jobs(args: &Args) -> Result<Vec<Job>, String> {
    let inject = match &args.inject {
        None => None,
        Some(name) => Some(
            Injection::parse(name).ok_or_else(|| format!("unknown injection `{name}`"))?,
        ),
    };
    if let Some(kind) = &args.kind {
        let target = if kind == "CTRL" {
            ReplayTarget::Controller
        } else {
            ReplayTarget::Queue(
                IqKind::from_label(kind).ok_or_else(|| format!("unknown kind `{kind}`"))?,
            )
        };
        let capacity = args.capacity.unwrap_or(3);
        let depth = args.depth.unwrap_or(match target {
            ReplayTarget::Controller => ctrl_depth(),
            ReplayTarget::Queue(kind) => queue_depth(kind),
        });
        return Ok(vec![Job {
            target,
            capacity: if target == ReplayTarget::Controller { 0 } else { capacity },
            width: if target == ReplayTarget::Controller { 0 } else { args.width.unwrap_or(2) },
            depth,
            inject,
        }]);
    }
    if inject.is_some() {
        return Err("--inject needs an explicit --kind".to_string());
    }
    let width = args.width.unwrap_or(2);
    let mut out = Vec::new();
    for kind in IqKind::ALL {
        for capacity in [2usize, 3, 4] {
            if !in_matrix(args.smoke, kind, capacity) {
                continue;
            }
            out.push(Job {
                target: ReplayTarget::Queue(kind),
                capacity,
                width,
                depth: args.depth.unwrap_or_else(|| queue_depth(kind)),
                inject: None,
            });
        }
    }
    out.push(Job {
        target: ReplayTarget::Controller,
        capacity: 0,
        width: 0,
        depth: args.depth.unwrap_or_else(ctrl_depth),
        inject: None,
    });
    Ok(out)
}

/// Explores one job; returns the run record plus whether it is
/// acceptable for a clean tree (closed, no violation).
fn run_job(job: &Job) -> Result<(McRun, bool), String> {
    let outcome: RunOutcome;
    let minimized: Option<McViolation>;
    match job.target {
        ReplayTarget::Queue(kind) => {
            let root = QueueHarness::new(kind, job.capacity, job.width, job.inject)?;
            outcome = explore(&root, job.depth);
            minimized = shrink(&root, job, &outcome)?;
        }
        ReplayTarget::Controller => {
            let root = CtrlHarness::new(job.inject)?;
            outcome = explore(&root, job.depth);
            minimized = shrink(&root, job, &outcome)?;
        }
    }
    let mut run = McRun::from_outcome(
        job.target.label(),
        job.capacity,
        job.width,
        job.depth,
        job.inject.map(|i| i.label()),
        &outcome,
    );
    if let Some(violation) = minimized {
        run.violations.push(violation);
    }
    let ok = run.violations.is_empty() && run.closed;
    Ok((run, ok))
}

/// Minimizes a found violation and re-validates the rendered replay
/// string end-to-end before reporting it.
fn shrink<H: Harness>(
    root: &H,
    job: &Job,
    outcome: &RunOutcome,
) -> Result<Option<McViolation>, String> {
    let Some(found) = &outcome.violation else {
        return Ok(None);
    };
    let events = minimize(root, &found.events, found.property);
    let replay = Replay {
        target: job.target,
        capacity: job.capacity,
        width: job.width,
        inject: job.inject.map(|i| i.label().to_string()),
        expect: Some(found.property.to_string()),
        events,
    };
    let rendered = replay.render();
    // A counterexample that does not replay is worse than none: fail loudly.
    let reparsed = Replay::parse(&rendered)
        .map_err(|e| format!("internal: minimized replay does not re-parse: {}", e.message))?;
    check_replay(&reparsed)
        .map_err(|e| format!("internal: minimized replay does not reproduce: {e}"))?;
    Ok(Some(McViolation {
        property: found.property.to_string(),
        detail: found.detail.clone(),
        replay: rendered,
    }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let jobs = match jobs(&args) {
        Ok(jobs) => jobs,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let mut runs: Vec<McRun> = Vec::new();
    let mut violated = false;
    let mut failed_close = false;
    for job in &jobs {
        let (run, ok) = match run_job(job) {
            Ok(result) => result,
            Err(message) => {
                eprintln!("swque-mc: {message}");
                return ExitCode::from(2);
            }
        };
        let scope = match job.target {
            ReplayTarget::Controller => format!("CTRL depth {}", run.depth),
            ReplayTarget::Queue(_) => format!(
                "{} cap {} width {} depth {}",
                run.target, run.capacity, run.width, run.depth
            ),
        };
        let line = if let Some(v) = run.violations.first() {
            violated = true;
            format!(
                "{scope}: VIOLATION {} after {} states — {}\n  replay: {}",
                v.property, run.states, v.detail, v.replay
            )
        } else if run.closed {
            format!("{scope}: explored {} states, frontier empty", run.states)
        } else {
            if job.inject.is_none() {
                failed_close = true;
            }
            format!(
                "{scope}: explored {} states, frontier OPEN ({} unexplored)",
                run.states, run.frontier
            )
        };
        if args.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
        let _ = ok;
        runs.push(run);
    }

    if args.json {
        println!("{}", report(args.smoke, &runs));
    }
    if violated {
        ExitCode::from(1)
    } else if failed_close {
        eprintln!("swque-mc: a clean run left its frontier open — raise --depth");
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
