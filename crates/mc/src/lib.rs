//! `swque-mc`: a bounded exhaustive model checker for every issue-queue
//! organization and the SWQUE mode controller.
//!
//! The cycle-level simulator exercises the queues along the paths real
//! programs happen to take; this crate exercises them along **every**
//! path. Small-scope queues (capacity 2–6) are driven through every
//! reachable interleaving of dispatch / wakeup / select / squash / flush /
//! mode-poll events up to a depth bound, deduplicating visited states by a
//! canonicalized digest of the queue's `Debug` render (DESIGN.md §12). At
//! every step a per-kind property catalog is checked:
//!
//! | property | kinds | claim |
//! |---|---|---|
//! | `grant-ready` | all | every grant had both sources resolved |
//! | `budget-bound` | all | a select never grants past its budget |
//! | `len-conserved` | all | queue occupancy equals the shadow model's |
//! | `space-consistent` | all | `has_space` is truthful at both extremes |
//! | `ready-agrees` | all | `has_ready` equals the shadow's ready bit |
//! | `no-ready-no-grant` | all | `!has_ready` ⇒ the next select grants nothing |
//! | `idle-equivalence` | all | `idle_tick(n)` ≡ `n` empty selects, stats included |
//! | `ready-within-1` | single-cycle kinds | a non-exhausted select leaves no ready entry |
//! | `pc-age-ordered` | CIRC-PC, SWQUE | single-cycle grants issue oldest-first |
//! | `pc-ready-within-bound` | CIRC-PC, SWQUE | the two-cycle RV path cannot starve an entry |
//! | `oldest-first` | SHIFT, CIRC-PPRI | grants are exactly the oldest ready entries |
//! | `age-first` | AGE, AGE-multiAM | the age matrix grants the oldest ready first |
//! | `swque-switch-once` | SWQUE | a switch is requested until flushed, adopted once |
//! | `ctrl-switch-is-change` | CTRL | `SwitchTo(m)` really changes the mode to `m` |
//! | `ctrl-stay-is-stable` | CTRL | `Stay` leaves the mode alone |
//! | `ctrl-instability-reduction` | CTRL | sustained FLPI instability lowers the AGE threshold |
//! | `ctrl-threshold-floor` | CTRL | the adapted threshold never goes negative |
//!
//! A violation is shrunk by delta-debugging ([`explore::minimize`]) and
//! emitted as a `swque-mc-replay-v1` string (`swque_core::replay`) that
//! re-executes the exact counterexample via [`exec::run_replay`] — the
//! committed corpus under `tests/replays/` replays forever.
//!
//! Negative injections prove the checker can actually see: building
//! CIRC-PC via `without_correction` (`--inject circ-pc-no-correct`) makes
//! `pc-age-ordered` fail, and a `stabilize: false` controller (`--inject
//! controller-no-stabilize`) makes `ctrl-instability-reduction` fail —
//! both wired as mandatory red/green runs in `scripts/verify.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod ctrl;
pub mod exec;
pub mod explore;
pub mod harness;
pub mod report;

pub use canon::{canonical_render, SEQ_BASE};
pub use ctrl::CtrlHarness;
pub use exec::{check_replay, run_replay, ReplayOutcome};
pub use explore::{explore, minimize, FoundViolation, Harness, RunOutcome};
pub use harness::{Injection, QueueHarness, Violation};
pub use report::{report, McRun, McViolation, MC_SCHEMA};
