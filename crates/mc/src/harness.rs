//! The queue-side model: a real `Box<dyn IssueQueue>` paired with a
//! shadow model, the per-kind property checks, and the event alphabet.
//!
//! The shadow model is deliberately trivial — a vector of `(seq, srcs,
//! starve)` in program order — so that every property reduces to a
//! comparison between something the queue claims and something the shadow
//! knows by construction. See the crate docs for the property catalog.
//!
//! # Scope choices that keep the state space closed
//!
//! * Tags come from `{0, 1}` with a canonical-fresh-tag rule: a dispatch
//!   may only name tag 1 once tag 0 has a live waiter, which quotients
//!   away tag-renaming symmetry.
//! * SWQUE harnesses set `flpi_region_frac = 1.0`, making *every* grant a
//!   low-priority grant: the interval FLPI is then exactly `1.0` when any
//!   instruction issued in the interval and `0.0` otherwise, so the only
//!   interval state the dedup key must carry is one bit
//!   (`granted_since_interval`) instead of two unbounded issue counters.
//!   The full FLPI/instability decision logic is checked exhaustively by
//!   [`CtrlHarness`](crate::CtrlHarness), where metrics are direct
//!   alphabet inputs.
//! * Poll events always land exactly on the next interval boundary
//!   (`retired = (k+1) · interval_insts`), so MPKI deltas are `0` or an
//!   unambiguously-high value chosen by the event, never an accumulation.

use std::collections::BTreeMap;

use swque_core::replay::Event;
use swque_core::{
    CircPcQueue, DispatchReq, IqConfig, IqKind, IqMode, IssueBudget, IssueQueue, Tag,
};
use swque_isa::FuClass;

use crate::canon::{canonical_render, SEQ_BASE};
use crate::explore::Harness;

/// `--inject` name for [`Injection::CircPcNoCorrect`].
pub const INJECT_CIRC_PC_NO_CORRECT: &str = "circ-pc-no-correct";
/// `--inject` name for [`Injection::ControllerNoStabilize`].
pub const INJECT_CONTROLLER_NO_STABILIZE: &str = "controller-no-stabilize";

/// A named mutation the harness plants so `scripts/verify.sh` can prove
/// the checker actually detects bugs (red/green gating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Build CIRC-PC via [`CircPcQueue::without_correction`]: the S_NR
    /// mask and the S_RV path are disabled, so wrapped-region youngsters
    /// issue ahead of older instructions — violates `pc-age-ordered`.
    CircPcNoCorrect,
    /// Run the controller with `stabilize: false`: the instability
    /// counter never trips, so the AGE-mode FLPI threshold is never
    /// lowered — violates `ctrl-instability-reduction`.
    ControllerNoStabilize,
}

impl Injection {
    /// Parses an `--inject` / `inject=` name.
    pub fn parse(name: &str) -> Option<Injection> {
        match name {
            INJECT_CIRC_PC_NO_CORRECT => Some(Injection::CircPcNoCorrect),
            INJECT_CONTROLLER_NO_STABILIZE => Some(Injection::ControllerNoStabilize),
            _ => None,
        }
    }

    /// The canonical name (the `inject=` field of a replay).
    pub fn label(&self) -> &'static str {
        match self {
            Injection::CircPcNoCorrect => INJECT_CIRC_PC_NO_CORRECT,
            Injection::ControllerNoStabilize => INJECT_CONTROLLER_NO_STABILIZE,
        }
    }
}

/// A property violation: the property name (stable, documented in the
/// crate docs) plus a human-readable account of what went wrong.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable property name (e.g. `pc-age-ordered`).
    pub property: &'static str,
    /// What the queue claimed vs. what the shadow knew.
    pub detail: String,
}

impl Violation {
    fn new(property: &'static str, detail: String) -> Violation {
        Violation { property, detail }
    }
}

/// One shadow instruction: everything the checker needs to predict queue
/// behavior.
#[derive(Debug, Clone, Copy)]
struct ShadowEntry {
    seq: u64,
    srcs: [Option<Tag>; 2],
    /// Ready-but-not-granted streak across non-exhausted selects, for
    /// `pc-ready-within-bound`. Capped at the bound + 1 so the state
    /// space stays finite.
    starve: u64,
}

impl ShadowEntry {
    fn ready(&self) -> bool {
        self.srcs[0].is_none() && self.srcs[1].is_none()
    }
}

/// A queue under check: the real structure plus the shadow model.
#[derive(Debug, Clone)]
pub struct QueueHarness {
    kind: IqKind,
    queue: Box<dyn IssueQueue>,
    capacity: usize,
    width: usize,
    /// Shadow entries in program (= seq) order.
    entries: Vec<ShadowEntry>,
    next_seq: u64,
    /// SWQUE only: interval length of the embedded controller.
    interval: u64,
    /// SWQUE only: mode the queue must adopt at the next flush.
    pending_switch: Option<IqMode>,
    /// SWQUE only: shadow of `SwqueStats::switches`.
    switches: u64,
    /// SWQUE only: completed controller intervals (drives poll totals).
    intervals_done: u64,
    /// SWQUE only: running LLC-miss total fed to polls.
    misses_total: u64,
    /// SWQUE only: did anything issue since the last completed interval?
    /// With `flpi_region_frac = 1.0` this single bit determines the next
    /// interval's FLPI exactly (see module docs).
    granted_since_interval: bool,
}

fn is_swque(kind: IqKind) -> bool {
    matches!(kind, IqKind::Swque | IqKind::SwqueMulti)
}

/// Single-cycle-select kinds: every ready entry is issuable the cycle it
/// becomes ready, so `ready-within-1` applies. CIRC-PC (and SWQUE, which
/// embeds it) instead gets the weaker `pc-ready-within-bound` because of
/// the two-cycle RV path.
fn single_cycle(kind: IqKind) -> bool {
    !matches!(kind, IqKind::CircPc | IqKind::Swque | IqKind::SwqueMulti)
}

/// Kinds whose `has_space` is free-list-based and therefore truthful the
/// moment the queue is empty. Circular-allocation kinds legitimately
/// report "no space" on an empty queue until the head pointer catches up,
/// so they are excluded from the `is_empty ⇒ has_space` direction.
fn free_list(kind: IqKind) -> bool {
    matches!(kind, IqKind::Shift | IqKind::Rand | IqKind::Age | IqKind::AgeMulti)
}

impl QueueHarness {
    /// Builds a harness for `kind` at the given small scope.
    ///
    /// Fails on nonsensical combinations (capacity < 2, zero width, or an
    /// injection that does not apply to `kind`).
    pub fn new(
        kind: IqKind,
        capacity: usize,
        width: usize,
        inject: Option<Injection>,
    ) -> Result<QueueHarness, String> {
        if capacity < 2 {
            return Err(format!("capacity must be at least 2, got {capacity}"));
        }
        if width == 0 {
            return Err("issue width must be at least 1".to_string());
        }
        let mut config = IqConfig {
            capacity,
            issue_width: width,
            // Make every grant low-priority so SWQUE interval FLPI is a
            // pure function of the granted_since_interval bit.
            flpi_region_frac: 1.0,
            ..IqConfig::default()
        };
        let queue: Box<dyn IssueQueue> = match inject {
            None => kind.build(&config),
            Some(Injection::CircPcNoCorrect) => {
                if kind != IqKind::CircPc {
                    return Err(format!(
                        "injection {INJECT_CIRC_PC_NO_CORRECT} applies to CIRC-PC only, not {}",
                        kind.label()
                    ));
                }
                Box::new(CircPcQueue::without_correction(&config))
            }
            Some(Injection::ControllerNoStabilize) => {
                if !is_swque(kind) {
                    return Err(format!(
                        "injection {INJECT_CONTROLLER_NO_STABILIZE} applies to SWQUE kinds or \
                         CTRL, not {}",
                        kind.label()
                    ));
                }
                config.swque.stabilize = false;
                kind.build(&config)
            }
        };
        let interval = config.swque.interval_insts;
        Ok(QueueHarness {
            kind,
            queue,
            capacity,
            width,
            entries: Vec::new(),
            next_seq: SEQ_BASE,
            interval,
            pending_switch: None,
            switches: 0,
            intervals_done: 0,
            misses_total: 0,
            granted_since_interval: false,
        })
    }

    /// The kind under check.
    pub fn kind(&self) -> IqKind {
        self.kind
    }

    fn tag_live(&self, tag: Tag) -> bool {
        self.entries.iter().any(|e| e.srcs.contains(&Some(tag)))
    }

    /// Invariants that must hold after *every* event.
    fn check_shape(&self) -> Result<(), Violation> {
        let len = self.queue.len();
        if len != self.entries.len() {
            return Err(Violation::new(
                "len-conserved",
                format!("queue len {len} but shadow holds {}", self.entries.len()),
            ));
        }
        if len > self.capacity {
            return Err(Violation::new(
                "len-conserved",
                format!("queue len {len} exceeds capacity {}", self.capacity),
            ));
        }
        if len == self.capacity && self.queue.has_space() {
            return Err(Violation::new(
                "space-consistent",
                format!("has_space() at full occupancy {len}/{}", self.capacity),
            ));
        }
        if free_list(self.kind) && self.queue.is_empty() && !self.queue.has_space() {
            return Err(Violation::new(
                "space-consistent",
                "empty free-list queue reports no space".to_string(),
            ));
        }
        let shadow_ready = self.entries.iter().any(ShadowEntry::ready);
        if shadow_ready && !self.queue.has_ready() {
            return Err(Violation::new(
                "ready-agrees",
                "shadow has a ready entry but has_ready() is false".to_string(),
            ));
        }
        if !shadow_ready && self.queue.has_ready() {
            return Err(Violation::new(
                "ready-agrees",
                "has_ready() is true but no shadow entry is ready".to_string(),
            ));
        }
        Ok(())
    }

    /// `idle_tick(n)` must be observably identical to `n` empty selects
    /// — architectural state (canonical render, which masks reused
    /// scratch allocations) *and* statistics — and those empty selects
    /// must grant nothing. Pure probe on clones.
    fn idle_probe(&self) -> Result<(), Violation> {
        if self.queue.has_ready() {
            return Ok(());
        }
        let live: BTreeMap<u64, u64> =
            self.entries.iter().enumerate().map(|(rank, e)| (e.seq, rank as u64)).collect();
        for n in [1u64, 3] {
            let mut ticked = self.queue.clone();
            ticked.idle_tick(n);
            let mut selected = self.queue.clone();
            for _ in 0..n {
                let mut budget = IssueBudget::new(self.width, [self.width; 4]);
                let grants = selected.select(&mut budget);
                if !grants.is_empty() {
                    return Err(Violation::new(
                        "no-ready-no-grant",
                        format!("select granted {} with has_ready() false", grants.len()),
                    ));
                }
            }
            let arch_ticked = canonical_render(&format!("{ticked:?}"), &live);
            let arch_selected = canonical_render(&format!("{selected:?}"), &live);
            if arch_ticked != arch_selected {
                return Err(Violation::new(
                    "idle-equivalence",
                    format!("idle_tick({n}) architecturally diverges from {n} empty selects"),
                ));
            }
            let stats = (ticked.stats(), ticked.swque_stats());
            let expected = (selected.stats(), selected.swque_stats());
            if format!("{stats:?}") != format!("{expected:?}") {
                return Err(Violation::new(
                    "idle-equivalence",
                    format!(
                        "idle_tick({n}) statistics {stats:?} diverge from {n} empty selects \
                         {expected:?}"
                    ),
                ));
            }
        }
        Ok(())
    }

    fn do_dispatch(&mut self, srcs: [Option<Tag>; 2]) -> Result<(), Violation> {
        if !self.queue.has_space() {
            return Ok(()); // precondition unmet: no-op, not a violation
        }
        let seq = self.next_seq;
        let req = DispatchReq::new(seq, seq, None, srcs, FuClass::IntAlu);
        if self.queue.dispatch(req).is_err() {
            return Err(Violation::new(
                "space-consistent",
                format!("has_space() true but dispatch of seq {seq} failed"),
            ));
        }
        self.next_seq += 1;
        self.entries.push(ShadowEntry { seq, srcs, starve: 0 });
        Ok(())
    }

    fn do_wakeup(&mut self, tag: Tag) {
        self.queue.wakeup(tag);
        for entry in &mut self.entries {
            for src in &mut entry.srcs {
                if *src == Some(tag) {
                    *src = None;
                }
            }
        }
    }

    fn do_select(&mut self, width: usize) -> Result<(), Violation> {
        let had_ready = self.queue.has_ready();
        let mode = self.queue.mode();
        let pre_ready: Vec<u64> =
            self.entries.iter().filter(|e| e.ready()).map(|e| e.seq).collect();
        let mut budget = IssueBudget::new(width, [width; 4]);
        let grants = self.queue.select(&mut budget);

        if grants.len() > width {
            return Err(Violation::new(
                "budget-bound",
                format!("granted {} with width {width}", grants.len()),
            ));
        }
        if !had_ready && !grants.is_empty() {
            return Err(Violation::new(
                "no-ready-no-grant",
                format!("granted {} with has_ready() false", grants.len()),
            ));
        }
        let mut granted: Vec<u64> = Vec::with_capacity(grants.len());
        for g in &grants {
            if granted.contains(&g.seq) {
                return Err(Violation::new(
                    "grant-ready",
                    format!("seq {} granted twice in one select", g.seq),
                ));
            }
            if !pre_ready.contains(&g.seq) {
                return Err(Violation::new(
                    "grant-ready",
                    format!("granted seq {} which was not a ready entry", g.seq),
                ));
            }
            granted.push(g.seq);
        }

        // Age-ordering family, per kind.
        let ordered_kinds = matches!(self.kind, IqKind::Shift | IqKind::CircPpri);
        if ordered_kinds || self.kind == IqKind::CircPc || (is_swque(self.kind) && mode == IqMode::CircPc)
        {
            // CIRC-PC: the priority-corrected single-cycle stream must be
            // age-ordered; RV-path grants (two_cycle) ride on top.
            let mut last: Option<u64> = None;
            for g in grants.iter().filter(|g| !g.two_cycle) {
                if let Some(prev) = last {
                    if g.seq <= prev {
                        return Err(Violation::new(
                            if ordered_kinds { "oldest-first" } else { "pc-age-ordered" },
                            format!("granted seq {} after younger seq {prev}", g.seq),
                        ));
                    }
                }
                last = Some(g.seq);
            }
        }
        if ordered_kinds {
            // Stronger: the grants are exactly the oldest ready entries.
            let max_granted = granted.iter().max().copied();
            let min_left =
                pre_ready.iter().filter(|s| !granted.contains(s)).min().copied();
            if let (Some(hi), Some(lo)) = (max_granted, min_left) {
                if hi > lo {
                    return Err(Violation::new(
                        "oldest-first",
                        format!("granted seq {hi} while older ready seq {lo} was passed over"),
                    ));
                }
            }
        }
        if matches!(self.kind, IqKind::Age | IqKind::AgeMulti)
            && !budget.exhausted()
            && !pre_ready.is_empty()
        {
            let oldest = pre_ready.iter().min().copied().unwrap_or(0);
            if !granted.contains(&oldest) {
                return Err(Violation::new(
                    "age-first",
                    format!("budget left but oldest ready seq {oldest} was not granted"),
                ));
            }
        }

        // Liveness.
        let exhausted = budget.exhausted();
        if single_cycle(self.kind) && !exhausted {
            if let Some(seq) = pre_ready.iter().find(|s| !granted.contains(s)) {
                return Err(Violation::new(
                    "ready-within-1",
                    format!("budget left but ready seq {seq} was not granted"),
                ));
            }
        }
        let starve_bound = (self.capacity as u64) + 2;
        self.entries.retain(|e| !granted.contains(&e.seq));
        if !single_cycle(self.kind) && !exhausted {
            for entry in &mut self.entries {
                if entry.ready() && pre_ready.contains(&entry.seq) {
                    entry.starve = (entry.starve + 1).min(starve_bound + 1);
                }
            }
            if let Some(entry) = self.entries.iter().find(|e| e.starve > starve_bound) {
                return Err(Violation::new(
                    "pc-ready-within-bound",
                    format!(
                        "seq {} stayed ready through {} non-exhausted selects (bound {})",
                        entry.seq, entry.starve, starve_bound
                    ),
                ));
            }
        }
        if !granted.is_empty() {
            self.granted_since_interval = true;
        }
        Ok(())
    }

    fn do_squash(&mut self, seq: u64) {
        self.queue.squash_younger(seq);
        self.entries.retain(|e| e.seq <= seq);
        // `pc-ready-within-bound` is a per-squash-free-window claim: a
        // squash reshapes the region, and an adversary squashing every
        // few cycles can keep a wrapped entry S_NR-masked forever (the
        // explorer finds that interleaving), which no fixed bound
        // survives. Within squash-free windows the bound is exhaustive.
        for entry in &mut self.entries {
            entry.starve = 0;
        }
    }

    fn do_flush(&mut self) -> Result<(), Violation> {
        let pending = self.pending_switch.take();
        self.queue.flush();
        self.entries.clear();
        if let Some(stats) = self.queue.swque_stats() {
            let expected = self.switches + u64::from(pending.is_some());
            if stats.switches != expected {
                return Err(Violation::new(
                    "swque-switch-once",
                    format!(
                        "flush with pending switch {pending:?}: switches counter {} (expected \
                         {expected})",
                        stats.switches
                    ),
                ));
            }
            self.switches = expected;
            if let Some(target) = pending {
                if self.queue.mode() != target {
                    return Err(Violation::new(
                        "swque-switch-once",
                        format!(
                            "flush was to adopt {target:?} but queue is in {:?}",
                            self.queue.mode()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn do_poll(&mut self, retired: u64, misses: u64) -> Result<(), Violation> {
        let mode_before = self.queue.mode();
        let wants = self.queue.poll_mode_switch(self.intervals_done, retired, misses);
        if !is_swque(self.kind) {
            if wants {
                return Err(Violation::new(
                    "swque-switch-once",
                    "fixed-mode queue requested a mode switch".to_string(),
                ));
            }
            return Ok(());
        }
        if self.queue.mode() != mode_before {
            return Err(Violation::new(
                "swque-switch-once",
                format!(
                    "poll changed the effective mode {mode_before:?} -> {:?} without a flush",
                    self.queue.mode()
                ),
            ));
        }
        match self.pending_switch {
            Some(_) => {
                if !wants {
                    return Err(Violation::new(
                        "swque-switch-once",
                        "pending switch stopped being requested before the flush".to_string(),
                    ));
                }
                // Waiting poll: the queue ignored the totals, so the
                // interval bookkeeping stays put.
            }
            None => {
                // This poll landed on an interval boundary by construction.
                self.intervals_done += 1;
                self.misses_total = misses;
                self.granted_since_interval = false;
                if wants {
                    if mode_before == IqMode::Fixed {
                        return Err(Violation::new(
                            "swque-switch-once",
                            "switch requested from Fixed mode".to_string(),
                        ));
                    }
                    let target = match mode_before {
                        IqMode::Age => IqMode::CircPc,
                        _ => IqMode::Age,
                    };
                    self.pending_switch = Some(target);
                }
            }
        }
        Ok(())
    }

    /// The next interval-boundary retired total for poll events.
    fn next_poll_retired(&self) -> u64 {
        (self.intervals_done + 1) * self.interval
    }
}

impl Harness for QueueHarness {
    fn enabled_events(&self) -> Vec<Event> {
        let mut events = Vec::new();
        if self.queue.has_space() {
            events.push(Event::Dispatch { srcs: [None, None] });
            events.push(Event::Dispatch { srcs: [Some(0), None] });
            if self.tag_live(0) {
                // Canonical fresh-tag rule: tag 1 may appear only once
                // tag 0 is in use (symmetry reduction over tag renaming).
                events.push(Event::Dispatch { srcs: [Some(1), None] });
                events.push(Event::Dispatch { srcs: [Some(0), Some(1)] });
            }
        }
        for tag in [0, 1] {
            if self.tag_live(tag) {
                events.push(Event::Wakeup(tag));
            }
        }
        events.push(Event::Select { width: 1 });
        if self.width > 1 {
            events.push(Event::Select { width: self.width });
        }
        if self.entries.len() >= 2 {
            let oldest = self.entries[0].seq;
            let mid = self.entries[self.entries.len() / 2].seq;
            events.push(Event::SquashYounger(oldest));
            if mid != oldest {
                events.push(Event::SquashYounger(mid));
            }
        }
        if !self.entries.is_empty() || self.pending_switch.is_some() {
            events.push(Event::Flush);
        }
        if is_swque(self.kind) {
            let retired = self.next_poll_retired();
            events.push(Event::Poll { retired, misses: self.misses_total });
            if self.pending_switch.is_none() {
                // A high-MPKI interval: +100 misses over 10k insts = MPKI 10.
                events.push(Event::Poll { retired, misses: self.misses_total + 100 });
            }
        }
        events
    }

    fn apply(&mut self, event: Event) -> Result<(), Violation> {
        match event {
            Event::Dispatch { srcs } => self.do_dispatch(srcs)?,
            Event::Wakeup(tag) => self.do_wakeup(tag),
            Event::Select { width } => self.do_select(width)?,
            Event::SquashYounger(seq) => self.do_squash(seq),
            Event::Flush => self.do_flush()?,
            Event::Poll { retired, misses } => self.do_poll(retired, misses)?,
            Event::IdleTick(cycles) => {
                if !self.queue.has_ready() {
                    self.queue.idle_tick(cycles);
                }
            }
            Event::Interval { .. } | Event::Reset(_) => {
                return Err(Violation::new(
                    "replay-target",
                    format!("controller event {event} sent to a queue harness"),
                ));
            }
        }
        self.check_shape()?;
        self.idle_probe()
    }

    fn state_key(&self) -> u64 {
        let live: BTreeMap<u64, u64> =
            self.entries.iter().enumerate().map(|(rank, e)| (e.seq, rank as u64)).collect();
        let queue_part = canonical_render(&format!("{:?}", self.queue), &live);
        let mut shadow = String::new();
        for (rank, entry) in self.entries.iter().enumerate() {
            shadow.push_str(&format!(
                "s{rank}:{:?}/{:?}*{};",
                entry.srcs[0], entry.srcs[1], entry.starve
            ));
        }
        shadow.push_str(&format!(
            "|pend={:?} g={}",
            self.pending_switch, self.granted_since_interval
        ));
        swque_core::fnv1a64(format!("{queue_part}|{shadow}").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_parse_and_label_round_trip() {
        for inj in [Injection::CircPcNoCorrect, Injection::ControllerNoStabilize] {
            assert_eq!(Injection::parse(inj.label()), Some(inj));
        }
        assert_eq!(Injection::parse("no-such-bug"), None);
    }

    #[test]
    fn injection_kind_mismatch_is_rejected() {
        assert!(QueueHarness::new(IqKind::Age, 4, 2, Some(Injection::CircPcNoCorrect)).is_err());
        assert!(
            QueueHarness::new(IqKind::Circ, 4, 2, Some(Injection::ControllerNoStabilize)).is_err()
        );
        assert!(QueueHarness::new(IqKind::CircPc, 4, 2, Some(Injection::CircPcNoCorrect)).is_ok());
    }

    #[test]
    fn dispatch_select_wakeup_cycle_stays_clean_on_every_kind() {
        for kind in IqKind::ALL {
            let mut h = QueueHarness::new(kind, 3, 2, None).unwrap();
            let script = [
                Event::Dispatch { srcs: [None, None] },
                Event::Dispatch { srcs: [Some(0), None] },
                Event::Select { width: 2 },
                Event::Wakeup(0),
                Event::Select { width: 2 },
                Event::Select { width: 1 },
                Event::Flush,
            ];
            for event in script {
                if let Err(v) = h.apply(event) {
                    panic!("{}: {} — {}", kind.label(), v.property, v.detail);
                }
            }
        }
    }

    #[test]
    fn squash_keeps_only_older_entries() {
        let mut h = QueueHarness::new(IqKind::Shift, 4, 2, None).unwrap();
        h.apply(Event::Dispatch { srcs: [Some(0), None] }).unwrap();
        h.apply(Event::Dispatch { srcs: [Some(0), None] }).unwrap();
        h.apply(Event::Dispatch { srcs: [Some(0), None] }).unwrap();
        h.apply(Event::SquashYounger(SEQ_BASE)).unwrap();
        assert_eq!(h.entries.len(), 1);
        assert_eq!(h.entries[0].seq, SEQ_BASE);
    }

    #[test]
    fn state_key_ignores_statistics_noise() {
        let mut a = QueueHarness::new(IqKind::Circ, 3, 2, None).unwrap();
        let mut b = QueueHarness::new(IqKind::Circ, 3, 2, None).unwrap();
        // Same architectural state, different stats history (extra empty
        // selects on b).
        a.apply(Event::Dispatch { srcs: [Some(0), None] }).unwrap();
        b.apply(Event::Select { width: 1 }).unwrap();
        b.apply(Event::Select { width: 1 }).unwrap();
        b.apply(Event::Dispatch { srcs: [Some(0), None] }).unwrap();
        assert_eq!(a.state_key(), b.state_key());
    }

    #[test]
    fn no_correction_injection_violates_pc_age_ordering() {
        // The uncorrected CIRC-PC leaves the wrapped region unmasked, so
        // once the region wraps, a young wrapped entry can issue ahead of
        // an older unwrapped one. Let the explorer find the interleaving.
        let root =
            QueueHarness::new(IqKind::CircPc, 3, 2, Some(Injection::CircPcNoCorrect)).unwrap();
        let outcome = crate::explore::explore(&root, 10);
        let v = outcome.violation.expect("injected queue should violate a property");
        assert_eq!(v.property, "pc-age-ordered", "detail: {}", v.detail);
    }
}
