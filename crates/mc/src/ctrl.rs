//! The SWQUE mode controller as a standalone transition system.
//!
//! [`QueueHarness`](crate::QueueHarness) proves the *switch protocol*
//! (poll → flush → adopt, exactly once); this harness proves the
//! *decision logic* of `SwqueController` (paper §3.2.2–§3.2.3), with
//! interval metrics as direct alphabet inputs so every MPKI × FLPI
//! combination around the thresholds is explored:
//!
//! * `ctrl-switch-is-change` / `ctrl-stay-is-stable` — the returned
//!   [`ModeDecision`] and the controller's `mode()` always agree;
//! * `ctrl-instability-reduction` — a shadow mirror of the Figure-7
//!   instability counter: whenever the shadow trips, the controller must
//!   have lowered the AGE-mode FLPI threshold (this is what the
//!   `controller-no-stabilize` injection breaks);
//! * `ctrl-threshold-floor` — the adapted threshold never goes negative.
//!
//! The FLPI alphabet straddles both thresholds the controller can be
//! using: 0.035 sits between a once-reduced threshold (0.03) and the base
//! (0.04), so threshold adaptation is behaviorally observable, not just
//! counter-observable.

use swque_core::replay::Event;
use swque_core::{IntervalMetrics, IqMode, ModeDecision, SwqueController, SwqueParams};

use crate::canon::canonical_render;
use crate::explore::Harness;
use crate::harness::{Injection, Violation, INJECT_CIRC_PC_NO_CORRECT};

/// The controller under check plus the shadow instability mirror.
#[derive(Debug, Clone)]
pub struct CtrlHarness {
    controller: SwqueController,
    params: SwqueParams,
    /// Shadow of the instability counter, advanced by the *specified*
    /// Figure-7 rules; the real counter may diverge under injection.
    shadow_instability: u32,
    /// Shadow of `threshold_reductions()` at the last check.
    shadow_reductions: u64,
    /// Periodic resets performed (drives the next reset total).
    resets: u64,
}

impl CtrlHarness {
    /// Builds a controller harness, optionally with the
    /// `controller-no-stabilize` injection.
    pub fn new(inject: Option<Injection>) -> Result<CtrlHarness, String> {
        let mut params = SwqueParams::default();
        match inject {
            None => {}
            Some(Injection::ControllerNoStabilize) => params.stabilize = false,
            Some(Injection::CircPcNoCorrect) => {
                return Err(format!(
                    "injection {INJECT_CIRC_PC_NO_CORRECT} applies to CIRC-PC, not the \
                     controller"
                ));
            }
        }
        Ok(CtrlHarness {
            controller: SwqueController::new(params),
            params,
            shadow_instability: 0,
            shadow_reductions: 0,
            resets: 0,
        })
    }

    fn do_interval(&mut self, mpki_milli: u32, flpi_milli: u32) -> Result<(), Violation> {
        let mode_before = self.controller.mode();
        let metrics = IntervalMetrics {
            mpki: f64::from(mpki_milli) / 1000.0,
            flpi: f64::from(flpi_milli) / 1000.0,
        };
        let decision = self.controller.evaluate(metrics);
        let mode_after = self.controller.mode();
        match decision {
            ModeDecision::Stay => {
                if mode_after != mode_before {
                    return Err(Violation {
                        property: "ctrl-stay-is-stable",
                        detail: format!(
                            "Stay decision but mode changed {mode_before:?} -> {mode_after:?}"
                        ),
                    });
                }
            }
            ModeDecision::SwitchTo(target) => {
                if target == mode_before || mode_after != target {
                    return Err(Violation {
                        property: "ctrl-switch-is-change",
                        detail: format!(
                            "SwitchTo({target:?}) from {mode_before:?} left mode {mode_after:?}"
                        ),
                    });
                }
            }
        }

        // Figure-7 shadow mirror: instability accounting happens only on
        // decisions made while in CIRC-PC mode, against the base
        // threshold (the adapted one is in force only in AGE mode).
        let reductions = self.controller.threshold_reductions();
        let mut expected = self.shadow_reductions;
        if mode_before == IqMode::CircPc {
            if metrics.flpi > self.params.flpi_threshold {
                self.shadow_instability += 1;
            } else {
                self.shadow_instability = 0;
            }
            if self.shadow_instability >= self.params.instability_threshold {
                expected += 1;
                self.shadow_instability = 0;
            }
        }
        if reductions != expected {
            return Err(Violation {
                property: "ctrl-instability-reduction",
                detail: format!(
                    "after {} FLPI-unstable intervals the threshold-reduction count is {} \
                     (expected {})",
                    self.params.instability_threshold, reductions, expected
                ),
            });
        }
        self.shadow_reductions = expected;

        if self.controller.active_flpi_threshold() < 0.0 {
            return Err(Violation {
                property: "ctrl-threshold-floor",
                detail: format!(
                    "active FLPI threshold went negative: {}",
                    self.controller.active_flpi_threshold()
                ),
            });
        }
        Ok(())
    }

    fn do_reset(&mut self, insts: u64) -> Result<(), Violation> {
        self.controller.maybe_periodic_reset(insts);
        self.resets += 1;
        self.shadow_instability = 0;
        // The reset restores the base threshold; reductions-so-far remain
        // counted, so re-sync the shadow rather than re-deriving it.
        self.shadow_reductions = self.controller.threshold_reductions();
        if self.controller.instability() != 0 {
            return Err(Violation {
                property: "ctrl-instability-reduction",
                detail: format!(
                    "periodic reset left instability counter at {}",
                    self.controller.instability()
                ),
            });
        }
        Ok(())
    }
}

impl Harness for CtrlHarness {
    fn enabled_events(&self) -> Vec<Event> {
        let mut events = Vec::new();
        // MPKI 0 / 2 straddles the 1.0 threshold; FLPI 0 / 0.035 / 0.05
        // straddles both the base (0.04) and once-reduced (0.03)
        // thresholds.
        for mpki_milli in [0, 2000] {
            for flpi_milli in [0, 35, 50] {
                events.push(Event::Interval { mpki_milli, flpi_milli });
            }
        }
        events.push(Event::Reset((self.resets + 1) * self.params.reset_interval_insts));
        events
    }

    fn apply(&mut self, event: Event) -> Result<(), Violation> {
        match event {
            Event::Interval { mpki_milli, flpi_milli } => self.do_interval(mpki_milli, flpi_milli),
            Event::Reset(insts) => self.do_reset(insts),
            other => Err(Violation {
                property: "replay-target",
                detail: format!("queue event {other} sent to the controller harness"),
            }),
        }
    }

    fn state_key(&self) -> u64 {
        let key = format!(
            "{}|sh={}",
            canonical_render(&format!("{:?}", self.controller), &std::collections::BTreeMap::new()),
            self.shadow_instability
        );
        swque_core::fnv1a64(key.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(mpki_milli: u32, flpi_milli: u32) -> Event {
        Event::Interval { mpki_milli, flpi_milli }
    }

    #[test]
    fn clean_controller_survives_the_instability_dance() {
        let mut h = CtrlHarness::new(None).unwrap();
        // flpi-high in CIRC-PC (switch to AGE), calm (back), flpi-high
        // again: instability reaches 2 and the reduction must land.
        for ev in [interval(0, 50), interval(0, 0), interval(0, 50)] {
            h.apply(ev).expect("clean controller must satisfy the mirror");
        }
        assert_eq!(h.controller.threshold_reductions(), 1);
    }

    #[test]
    fn no_stabilize_injection_violates_instability_reduction() {
        let mut h = CtrlHarness::new(Some(Injection::ControllerNoStabilize)).unwrap();
        let mut found = None;
        for ev in [interval(0, 50), interval(0, 0), interval(0, 50)] {
            if let Err(v) = h.apply(ev) {
                found = Some(v);
                break;
            }
        }
        let v = found.expect("injection must be detected");
        assert_eq!(v.property, "ctrl-instability-reduction");
    }

    #[test]
    fn reset_clears_instability_and_keeps_the_mirror_synced() {
        let mut h = CtrlHarness::new(None).unwrap();
        h.apply(interval(0, 50)).unwrap();
        h.apply(Event::Reset(1_000_000)).unwrap();
        h.apply(interval(0, 50)).unwrap();
        // One high interval after the reset: counter at 1, no reduction.
        assert_eq!(h.controller.threshold_reductions(), 0);
    }

    #[test]
    fn queue_events_are_rejected() {
        let mut h = CtrlHarness::new(None).unwrap();
        let v = h.apply(Event::Flush).unwrap_err();
        assert_eq!(v.property, "replay-target");
    }
}
