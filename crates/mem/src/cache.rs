//! Set-associative cache tag array with true LRU.

use crate::config::CacheConfig;
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
    /// Set when the line was filled by the prefetcher and not yet demanded.
    prefetched: bool,
    /// Requester that last touched (filled or demanded) the line. Only
    /// meaningful for shared caches; private caches leave it at 0.
    owner: usize,
}

/// A cache tag array (timing model only — data lives in the functional
/// emulator's memory).
///
/// Write policy is write-back/write-allocate, but since no data moves, the
/// only observable consequence is that stores allocate lines like loads.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.num_sets();
        Cache {
            config,
            sets: vec![
                vec![
                    Line { tag: 0, lru: 0, valid: false, prefetched: false, owner: 0 };
                    config.ways
                ];
                sets
            ],
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn tag_of(&self, line: u64) -> u64 {
        line >> self.set_mask.count_ones()
    }

    /// Demand access: returns `true` on hit. Updates LRU and statistics; a
    /// hit to a prefetched line is counted as a useful prefetch.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_by(addr, 0)
    }

    /// [`access`](Cache::access) on behalf of requester `owner` (shared
    /// caches track the last toucher per line so evictions can be
    /// attributed to neighbors).
    pub fn access_by(&mut self, addr: u64, owner: usize) -> bool {
        let line = self.line_addr(addr);
        let (set, tag) = (self.set_of(line), self.tag_of(line));
        self.clock += 1;
        let clock = self.clock;
        self.stats.accesses += 1;
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.lru = clock;
                way.owner = owner;
                if way.prefetched {
                    way.prefetched = false;
                    self.stats.useful_prefetches += 1;
                }
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probe without side effects: is the line present?
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let (set, tag) = (self.set_of(line), self.tag_of(line));
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Fills the line containing `addr`, evicting LRU if the set is full.
    /// `prefetch` marks the fill as prefetcher-initiated.
    pub fn fill(&mut self, addr: u64, prefetch: bool) {
        let _ = self.fill_by(addr, prefetch, 0);
    }

    /// [`fill`](Cache::fill) on behalf of requester `owner`. Returns the
    /// last toucher of the line this fill evicted, or `None` when no valid
    /// line was displaced (invalid way available, or the line was already
    /// present).
    pub fn fill_by(&mut self, addr: u64, prefetch: bool, owner: usize) -> Option<usize> {
        let line = self.line_addr(addr);
        let (set, tag) = (self.set_of(line), self.tag_of(line));
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[set];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            // Already present (e.g. prefetch raced a demand fill).
            way.lru = clock;
            way.owner = owner;
            return None;
        }
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        // Fill an invalid way, else evict LRU (invalid sorts first).
        let victim = set.iter_mut().min_by_key(|w| (w.valid, w.lru))?;
        let evicted = victim.valid.then_some(victim.owner);
        *victim = Line { tag, lru: clock, valid: true, prefetched: prefetch, owner };
        evicted
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 bytes.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, hit_latency: 1 })
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0));
        c.fill(0x0, false);
        assert!(c.access(0x0));
        assert!(c.access(0x3F), "same line");
        assert!(!c.access(0x40), "next line is a different set");
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = tiny();
        // Set stride: 2 sets of 64B lines => addresses 0, 128, 256 share set 0.
        c.fill(0, false);
        c.fill(128, false);
        assert!(c.access(0)); // 0 becomes MRU
        c.fill(256, false); // evicts 128
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn prefetched_line_counts_useful_on_demand_hit() {
        let mut c = tiny();
        c.fill(0, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(0));
        assert_eq!(c.stats().useful_prefetches, 1);
        // Second hit is no longer "useful": already demanded once.
        assert!(c.access(0));
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn duplicate_fill_does_not_duplicate_line() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(0, false);
        c.fill(128, false);
        // If fill(0) had claimed two ways, 128 would have evicted one of
        // them and this would miss:
        assert!(c.contains(0));
        assert!(c.contains(128));
    }

    #[test]
    fn fill_by_reports_evicted_owner() {
        let mut c = tiny();
        assert_eq!(c.fill_by(0, false, 0), None, "invalid way, nothing displaced");
        assert_eq!(c.fill_by(128, false, 1), None);
        // Set 0 is now full (lines 0 and 128); owner of line 0 is 0.
        assert_eq!(c.fill_by(256, false, 1), Some(0), "evicted LRU line's last toucher");
        // Re-filling a present line reports no eviction but retags owner.
        assert_eq!(c.fill_by(256, false, 0), None);
        c.fill_by(128, false, 1); // LRU-refresh 128 so 256 is the victim
        assert_eq!(c.fill_by(0, false, 1), Some(0), "owner updated by the re-fill");
    }

    #[test]
    fn access_by_retags_line_owner() {
        let mut c = tiny();
        c.fill_by(0, false, 0);
        assert!(c.access_by(0, 1), "hit retags the toucher");
        c.fill_by(128, false, 0);
        assert_eq!(c.fill_by(256, false, 0), Some(1), "eviction sees the demand toucher");
    }

    #[test]
    fn stats_count_accesses_and_misses() {
        let mut c = tiny();
        c.access(0);
        c.fill(0, false);
        c.access(0);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }
}
