//! Main-memory channel model: fixed minimum latency plus bandwidth
//! occupancy.

/// A DRAM channel with a minimum access latency and a line-transfer
//  occupancy derived from the configured bandwidth.
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    transfer_cycles: u64,
    next_free: u64,
    transfers: u64,
}

impl Dram {
    /// Creates a channel with `latency` minimum cycles per access and a
    /// per-line occupancy of `line_bytes / bytes_per_cycle` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: u64, bytes_per_cycle: u64, line_bytes: u64) -> Dram {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        Dram {
            latency,
            transfer_cycles: line_bytes.div_ceil(bytes_per_cycle),
            next_free: 0,
            transfers: 0,
        }
    }

    /// Requests one line at cycle `now`; returns the completion cycle.
    ///
    /// The channel serializes transfers: a request issued while the channel
    /// is busy starts when it frees. Latency overlaps with queueing only up
    /// to the minimum latency (i.e. completion is
    /// `start + latency` where `start = max(now, next_free)`).
    pub fn request(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.transfer_cycles;
        self.transfers += 1;
        start + self.latency
    }

    /// Number of line transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Cycle at which the channel next becomes free.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_pays_minimum_latency() {
        let mut d = Dram::new(300, 8, 64);
        assert_eq!(d.request(100), 400);
    }

    #[test]
    fn back_to_back_requests_overlap_latency_but_not_bandwidth() {
        let mut d = Dram::new(300, 8, 64);
        let a = d.request(0);
        let b = d.request(0);
        let c = d.request(0);
        assert_eq!(a, 300);
        assert_eq!(b, 308, "second transfer starts 8 cycles later (64B @ 8B/cyc)");
        assert_eq!(c, 316);
        // Overlap: three misses cost 316 cycles, not 900 — this is the MLP
        // effect the paper's capacity-demanding phases exploit.
        assert!(c < 3 * 300);
    }

    #[test]
    fn channel_idles_between_distant_requests() {
        let mut d = Dram::new(300, 8, 64);
        d.request(0);
        assert_eq!(d.request(1000), 1300, "no residual queueing after idle gap");
    }

    #[test]
    fn transfer_count_tracks_requests() {
        let mut d = Dram::new(10, 8, 64);
        d.request(0);
        d.request(0);
        assert_eq!(d.transfers(), 2);
    }
}
