//! Main-memory channel model: fixed minimum latency plus bandwidth
//! occupancy, shared between N requesters under round-robin arbitration.
//!
//! # Arbitration model
//!
//! The channel serves one line per `transfer_cycles`. With a single
//! requester the schedule is pure first-come packing (`start = max(now,
//! next_free)`) — bit-identical to the historical single-core model. With
//! several requesters, first-come packing would let whichever core calls
//! first monopolize the channel, so the arbiter layers a round-robin rate
//! cap on top (the burst-stabilized RR discipline of CICQ switches, arXiv
//! cs/0403029, reduced to a single shared channel as start-time fair
//! queuing):
//!
//! * While `k` requesters are active (have requested within the activity
//!   window), each requester's consecutive grants must be spaced at least
//!   `k * transfer_cycles` apart — its round-robin share of the channel.
//! * A grant pushed past the packed backlog by its own rate cap leaves the
//!   declined slots behind as reserved **holes**.
//! * Any requester whose rate cap permits claims the **earliest hole** at
//!   or after its own earliest start instead of queueing behind the full
//!   backlog — this is where interleaving actually happens, since
//!   already-granted completions cannot be rescheduled. A burst's own
//!   holes sit *behind* its next allowed start, so a flooder can never
//!   reclaim the slots it declined: they are, collectively, the share of
//!   the other active requesters.
//! * Holes whose start cycle passes unclaimed expire (the bandwidth is
//!   lost, as in hardware holding a slot for a requester that never
//!   arrives); the activity window bounds how long an idle neighbor can
//!   keep costing the busy one slots.
//!
//! The result is deterministic, call-order-independent fairness: a
//! requester that keeps at most one request outstanding waits a bounded
//! number of slots regardless of how aggressively neighbors queue (the
//! `proptest_dram` starvation-freedom property pins the bound).

use std::collections::BTreeSet;

/// Per-requester DRAM channel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramRequesterStats {
    /// Line transfers granted to this requester.
    pub transfers: u64,
    /// Cycles this requester's requests spent waiting on the channel while
    /// at least one *other* requester was active (arbitration contention;
    /// self-queueing behind one's own backlog does not count).
    pub arb_wait_cycles: u64,
}

/// Reserved-hole retention cap. A requester with unboundedly many requests
/// in flight could otherwise grow the hole set without bound (its rate cap
/// pushes its frontier ahead of real time, minting a hole per decline);
/// real cores are MSHR-limited so the set stays tiny, but the cap makes
/// the worst case a bounded loss of *future* reserved slots, never an
/// unbounded allocation.
const MAX_HOLES: usize = 1024;

/// A DRAM channel with a minimum access latency, a line-transfer occupancy
/// derived from the configured bandwidth, and round-robin arbitration
/// between requesters (see the module docs).
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    transfer_cycles: u64,
    next_free: u64,
    transfers: u64,
    /// Reserved future slots declined by rate-capped requesters: start
    /// cycles, claimable by any requester whose own rate cap reaches back
    /// that far. Expired entries (start < now) are pruned lazily.
    holes: BTreeSet<u64>,
    /// Last request cycle per requester (`None` until the first request).
    last_req: Vec<Option<u64>>,
    /// Last granted slot start per requester (rate-cap anchor).
    last_grant: Vec<Option<u64>>,
    per: Vec<DramRequesterStats>,
    /// Total contended wait cycles (sum of the per-requester counters).
    arb_wait_cycles: u64,
}

impl Dram {
    /// Creates a single-requester channel with `latency` minimum cycles per
    /// access and a per-line occupancy of `line_bytes / bytes_per_cycle`
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: u64, bytes_per_cycle: u64, line_bytes: u64) -> Dram {
        Dram::shared(latency, bytes_per_cycle, line_bytes, 1)
    }

    /// Creates a channel shared by `requesters` cores under round-robin
    /// arbitration. With `requesters == 1` the schedule is bit-identical
    /// to [`Dram::new`]'s first-come packing.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` or `requesters` is zero.
    pub fn shared(
        latency: u64,
        bytes_per_cycle: u64,
        line_bytes: u64,
        requesters: usize,
    ) -> Dram {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        assert!(requesters > 0, "a channel needs at least one requester"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        Dram {
            latency,
            transfer_cycles: line_bytes.div_ceil(bytes_per_cycle),
            next_free: 0,
            transfers: 0,
            holes: BTreeSet::new(),
            last_req: vec![None; requesters],
            last_grant: vec![None; requesters],
            per: vec![DramRequesterStats::default(); requesters],
            arb_wait_cycles: 0,
        }
    }

    /// Number of requesters sharing the channel.
    pub fn requesters(&self) -> usize {
        self.per.len()
    }

    /// Requests one line at cycle `now` on behalf of requester 0; returns
    /// the completion cycle. Single-requester channels keep the historical
    /// semantics: completion is `start + latency` where
    /// `start = max(now, next_free)`.
    // swque-domain: now: CycleStamp(launch), return: CycleStamp(completion)
    pub fn request(&mut self, now: u64) -> u64 {
        self.request_from(0, now)
    }

    /// Requests one line at cycle `now` on behalf of `requester`; returns
    /// the completion cycle under round-robin arbitration.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range for the channel.
    // swque-domain: now: CycleStamp(launch), return: CycleStamp(completion)
    pub fn request_from(&mut self, requester: usize, now: u64) -> u64 {
        assert!(requester < self.per.len(), "requester id out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        // Expired holes: their start cycle passed unclaimed.
        while let Some(&start) = self.holes.first() {
            if start >= now {
                break;
            }
            self.holes.remove(&start);
        }
        self.last_req[requester] = Some(now);
        let window = self.activity_window();
        let active = self
            .last_req
            .iter()
            .filter(|t| t.is_some_and(|t| t + window > now))
            .count() as u64;
        let others_active = active >= 2;

        // The rate cap: while k requesters share the channel, this
        // requester's next grant may start no earlier than one full
        // round-robin rotation after its previous one.
        let earliest = if others_active {
            let spacing = active * self.transfer_cycles;
            now.max(self.last_grant[requester].map_or(now, |g| g.saturating_add(spacing)))
        } else {
            now
        };

        let start = match others_active
            .then(|| self.holes.range(earliest..).next().copied())
            .flatten()
        {
            Some(hole) => {
                // Claim a slot a rate-capped burst declined: the grant
                // slips into the reserved hole instead of queueing behind
                // the backlog. The backlog frontier does not move.
                self.holes.remove(&hole);
                hole
            }
            None => {
                let start = earliest.max(self.next_free);
                if others_active {
                    // Slots the rate cap declined stay reserved for the
                    // other active requesters.
                    let mut hole = now.max(self.next_free);
                    while hole + self.transfer_cycles <= start && self.holes.len() < MAX_HOLES {
                        self.holes.insert(hole);
                        hole += self.transfer_cycles;
                    }
                }
                self.next_free = start + self.transfer_cycles;
                start
            }
        };
        self.last_grant[requester] = Some(start);

        if others_active {
            let wait = start.saturating_sub(now);
            self.per[requester].arb_wait_cycles += wait;
            self.arb_wait_cycles += wait;
        }
        self.transfers += 1;
        self.per[requester].transfers += 1;
        start + self.latency
    }

    /// How long after its last request a requester still counts as an
    /// active contender for arbitration purposes. Sized to cover one full
    /// miss round-trip with slack, so a latency-bound requester (one
    /// outstanding miss at a time) stays continuously active.
    fn activity_window(&self) -> u64 {
        2 * (self.latency + self.transfer_cycles)
    }

    /// Number of line transfers performed (all requesters).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles requests waited on the channel while another requester
    /// was active (all requesters).
    pub fn arb_wait_cycles(&self) -> u64 {
        self.arb_wait_cycles
    }

    /// Per-requester channel counters (empty slice never occurs; the
    /// channel always has at least one requester).
    pub fn requester_stats(&self) -> &[DramRequesterStats] {
        &self.per
    }

    /// Cycle at which the channel next becomes free.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_pays_minimum_latency() {
        let mut d = Dram::new(300, 8, 64);
        assert_eq!(d.request(100), 400);
    }

    #[test]
    fn back_to_back_requests_overlap_latency_but_not_bandwidth() {
        let mut d = Dram::new(300, 8, 64);
        let a = d.request(0);
        let b = d.request(0);
        let c = d.request(0);
        assert_eq!(a, 300);
        assert_eq!(b, 308, "second transfer starts 8 cycles later (64B @ 8B/cyc)");
        assert_eq!(c, 316);
        // Overlap: three misses cost 316 cycles, not 900 — this is the MLP
        // effect the paper's capacity-demanding phases exploit.
        assert!(c < 3 * 300);
    }

    #[test]
    fn channel_idles_between_distant_requests() {
        let mut d = Dram::new(300, 8, 64);
        d.request(0);
        assert_eq!(d.request(1000), 1300, "no residual queueing after idle gap");
    }

    #[test]
    fn transfer_count_tracks_requests() {
        let mut d = Dram::new(10, 8, 64);
        d.request(0);
        d.request(0);
        assert_eq!(d.transfers(), 2);
    }

    #[test]
    fn single_requester_shared_channel_matches_new() {
        let mut a = Dram::new(300, 8, 64);
        let mut b = Dram::shared(300, 8, 64, 1);
        for now in [0, 0, 5, 700, 700, 701, 10_000] {
            assert_eq!(a.request(now), b.request_from(0, now));
        }
        assert_eq!(a.arb_wait_cycles(), 0);
        assert_eq!(b.arb_wait_cycles(), 0, "no contention possible with one requester");
    }

    #[test]
    fn rate_capped_aggressor_leaves_claimable_holes() {
        let mut d = Dram::shared(300, 8, 64, 2);
        // Both requesters announce themselves, then requester 0 floods.
        let v0 = d.request_from(1, 0);
        assert_eq!(v0, 300);
        let a = d.request_from(0, 0);
        let b = d.request_from(0, 0);
        let c = d.request_from(0, 0);
        // First aggressor grant packs (slot at 8); with two active
        // requesters its grants must then be spaced 2 slots apart, so the
        // next two land at 24 and 40, each leaving the declined slot (16,
        // then 32) reserved.
        assert_eq!(a, 308);
        assert_eq!(b, 324);
        assert_eq!(c, 340);
        // The victim's next request claims the earliest reserved hole (16)
        // instead of queueing behind the whole backlog.
        let v1 = d.request_from(1, 1);
        assert!(v1 <= 316, "victim claims a declined slot, got completion {v1}");
    }

    #[test]
    fn aggressor_cannot_reclaim_its_own_declined_slots() {
        let mut d = Dram::shared(300, 8, 64, 2);
        d.request_from(1, 0);
        d.request_from(0, 0); // grant at 8
        d.request_from(0, 0); // grant at 24, hole at 16
        // The aggressor's own rate cap (next earliest start 40) is past the
        // hole it just declined, so its next grant cannot slip back into it.
        let again = d.request_from(0, 0);
        assert_eq!(again, 340, "rate cap holds the flood to every other slot");
        // The hole is still there for the victim.
        assert_eq!(d.request_from(1, 2), 316);
    }

    #[test]
    fn lone_requester_is_never_throttled_by_idle_neighbors() {
        // Requester 1 exists but never requests: requester 0 must keep the
        // historical solid-packing schedule.
        let mut d = Dram::shared(300, 8, 64, 2);
        let mut solo = Dram::new(300, 8, 64);
        for now in [0, 0, 0, 4, 16, 16] {
            assert_eq!(d.request_from(0, now), solo.request(now));
        }
        assert_eq!(d.arb_wait_cycles(), 0);
    }

    #[test]
    fn per_requester_transfers_sum_to_total() {
        let mut d = Dram::shared(100, 8, 64, 3);
        for (r, now) in [(0, 0), (1, 0), (2, 1), (0, 2), (1, 900), (1, 901)] {
            d.request_from(r, now);
        }
        let per: u64 = d.requester_stats().iter().map(|s| s.transfers).sum();
        assert_eq!(per, d.transfers());
        assert_eq!(d.requester_stats()[1].transfers, 3);
        let per_wait: u64 = d.requester_stats().iter().map(|s| s.arb_wait_cycles).sum();
        assert_eq!(per_wait, d.arb_wait_cycles());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_requester_rejected() {
        let mut d = Dram::shared(100, 8, 64, 2);
        let _ = d.request_from(2, 0);
    }

    #[test]
    fn expired_holes_do_not_serve_late_requests() {
        let mut d = Dram::shared(300, 8, 64, 2);
        d.request_from(1, 0);
        d.request_from(0, 0);
        d.request_from(0, 0); // declines slot 16
        // Requester 1 arrives long after the hole's start cycle passed (and
        // after requester 0's activity window lapsed): the hole has expired
        // and the request is served like an uncontended one.
        let late = d.request_from(1, 1_000);
        assert_eq!(late, 1_300, "expired hole is not claimable");
    }
}
