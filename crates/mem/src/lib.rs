//! Memory hierarchy substrate for the SWQUE reproduction.
//!
//! Models the paper's Table 2 memory system as a latency/occupancy timing
//! model (data values flow through the functional emulator, so the caches
//! here are tag-state machines):
//!
//! * **L1 I-cache**: 32 KB, 8-way, 64 B lines.
//! * **L1 D-cache**: 32 KB, 8-way, 64 B lines, 2-cycle hit, non-blocking
//!   (MSHR-limited miss overlap with miss merging).
//! * **L2**: 2 MB, 16-way, 64 B lines, 12-cycle hit — the last-level cache
//!   whose demand misses feed SWQUE's MPKI metric.
//! * **Main memory**: 300-cycle minimum latency, 8 B/cycle bandwidth
//!   (modelled as channel occupancy per line transfer).
//! * **Stream prefetcher**: 32 tracked streams, 16-line distance, 2-line
//!   degree, prefetching into L2.
//!
//! The central type is [`MemoryHierarchy`]; the core simulator calls
//! [`MemoryHierarchy::access`] with a cycle timestamp and receives the cycle
//! at which the access completes.
//!
//! # Example
//!
//! ```
//! use swque_mem::{AccessKind, MemConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::default());
//! let first = mem.access(0x1_0000, AccessKind::Load, 0);
//! assert!(first.done_at >= 300, "cold miss goes to DRAM");
//! let again = mem.access(0x1_0000, AccessKind::Load, first.done_at);
//! assert_eq!(again.done_at, first.done_at + 2, "L1 hit costs 2 cycles");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod dram;
mod hierarchy;
mod prefetch;
mod stats;

pub use cache::Cache;
pub use config::{CacheConfig, MemConfig, PrefetchConfig};
pub use dram::{Dram, DramRequesterStats};
pub use hierarchy::{AccessKind, AccessResult, MemoryHierarchy};
pub use prefetch::StreamPrefetcher;
pub use stats::{CacheStats, MemStats, RequesterMemStats, SharedMemStats};
