//! The full memory hierarchy: per-requester L1s backed by a shared unified
//! L2 backed by a shared DRAM channel, with per-requester MSHR-limited miss
//! overlap and a shared L2 stream prefetcher.
//!
//! A hierarchy is built for N *requesters* (cores). Each requester owns its
//! L1 I/D caches and an MSHR quota ([`MemConfig::mshrs`] registers each);
//! the L2, the stream prefetcher, and the DRAM channel are shared, with
//! round-robin arbitration on the channel (see [`crate::Dram`]) and
//! contention accounted in [`SharedMemStats`]. A single-requester
//! hierarchy ([`MemoryHierarchy::new`]) is bit-identical to the historical
//! single-core model: the arbiter degenerates to first-come packing and
//! every contention counter stays zero.

use std::collections::BTreeMap;

use swque_core::WakeHorizon;
use swque_trace::{TraceEvent, TraceHandle};

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::prefetch::StreamPrefetcher;
use crate::stats::{MemStats, RequesterMemStats, SharedMemStats};

/// The type of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store (write-allocate: timed like a load for line fill).
    Store,
    /// Instruction fetch.
    IFetch,
}

/// Timing outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available.
    pub done_at: u64,
    /// Hit in the first-level cache.
    pub l1_hit: bool,
    /// Hit in the L2 (meaningful only when `l1_hit` is false).
    pub l2_hit: bool,
}

/// One requester's private slice of the hierarchy: its L1 caches, its MSHR
/// quota, and the counters attributed to it.
#[derive(Debug)]
struct RequesterMem {
    l1i: Cache,
    l1d: Cache,
    /// Outstanding L1D misses: L1-line address → completion cycle. Ordered
    /// map on purpose: `purge` and the MSHR occupancy scan iterate it, and
    /// the determinism contract (DESIGN.md §8) bans hash-order iteration
    /// on the simulated path.
    mshr: BTreeMap<u64, u64>,
    /// Demand LLC misses this requester caused.
    llc_demand_misses: u64,
    /// Misses merged into an existing MSHR.
    mshr_merges: u64,
    /// Cycles an access waited because the quota's MSHRs were all busy.
    mshr_stall_cycles: u64,
}

/// The memory hierarchy timing model.
///
/// Because the functional emulator owns the data, the hierarchy only tracks
/// tags and timing. The core simulator stamps every access with the cycle at
/// which it starts; accesses may arrive out of cycle order (loads issue out
/// of order), which the model tolerates.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemConfig,
    cores: Vec<RequesterMem>,
    l2: Cache,
    dram: Dram,
    prefetcher: Option<StreamPrefetcher>,
    /// In-flight L2 fills (demand or prefetch): L2-line → completion cycle.
    /// Ordered for the same reason as the MSHR maps.
    inflight_l2: BTreeMap<u64, u64>,
    /// L2 evictions whose displaced line was last touched by a different
    /// requester than the filler.
    neighbor_evictions: u64,
    /// Observability sink (disabled by default; see
    /// [`MemoryHierarchy::set_trace`]).
    trace: TraceHandle,
    /// Epoch index of the last [`TraceEvent::MemEpoch`] sample.
    trace_epoch: u64,
    /// `(llc_demand_misses, dram_transfers)` at the last epoch boundary.
    trace_epoch_base: (u64, u64),
}

/// Cycles per [`TraceEvent::MemEpoch`] sample. Coarse on purpose: a sample
/// per miss would flood a bounded trace ring and evict the controller's
/// interval series, which is the series the experiments care about.
const MEM_EPOCH_CYCLES: u64 = 8192;

impl MemoryHierarchy {
    /// Creates a single-requester hierarchy from `config` (the historical
    /// single-core model).
    pub fn new(config: MemConfig) -> MemoryHierarchy {
        MemoryHierarchy::shared(config, 1)
    }

    /// Creates a hierarchy shared by `requesters` cores: per-core L1s and
    /// MSHR quotas over one L2, one stream prefetcher, and one round-robin
    /// arbitrated DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if `requesters` is zero.
    pub fn shared(config: MemConfig, requesters: usize) -> MemoryHierarchy {
        assert!(requesters > 0, "a hierarchy needs at least one requester"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        MemoryHierarchy {
            cores: (0..requesters)
                .map(|_| RequesterMem {
                    l1i: Cache::new(config.l1i),
                    l1d: Cache::new(config.l1d),
                    mshr: BTreeMap::new(),
                    llc_demand_misses: 0,
                    mshr_merges: 0,
                    mshr_stall_cycles: 0,
                })
                .collect(),
            l2: Cache::new(config.l2),
            dram: Dram::shared(
                config.dram_latency,
                config.dram_bytes_per_cycle,
                config.l2.line_bytes as u64,
                requesters,
            ),
            prefetcher: config.prefetch.map(StreamPrefetcher::new),
            inflight_l2: BTreeMap::new(),
            neighbor_evictions: 0,
            trace: TraceHandle::disabled(),
            trace_epoch: 0,
            trace_epoch_base: (0, 0),
            config,
        }
    }

    /// Number of requesters (cores) sharing the hierarchy.
    pub fn requesters(&self) -> usize {
        self.cores.len()
    }

    /// Connects an observability sink: the hierarchy emits one
    /// [`TraceEvent::MemEpoch`] per fixed-length (8192-cycle) epoch with
    /// the LLC-miss and DRAM-transfer deltas since the previous sample,
    /// tagged with the requester whose miss crossed the boundary.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.clone();
    }

    /// Samples miss/transfer activity when `now` has crossed into a new
    /// epoch. Called from the demand-miss path, so epochs with no misses
    /// fold into the next sample rather than emitting empty events.
    fn sample_epoch(&mut self, requester: usize, now: u64) {
        let epoch = now / MEM_EPOCH_CYCLES;
        if epoch <= self.trace_epoch {
            return;
        }
        let (miss_base, xfer_base) = self.trace_epoch_base;
        let misses = self.llc_demand_misses();
        let transfers = self.dram.transfers();
        self.trace.record(TraceEvent::MemEpoch {
            cycle: epoch * MEM_EPOCH_CYCLES,
            requester: requester as u32,
            llc_misses: misses.saturating_sub(miss_base),
            dram_transfers: transfers.saturating_sub(xfer_base),
        });
        self.trace_epoch = epoch;
        self.trace_epoch_base = (misses, transfers);
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics for requester 0 (cache counters are merged in
    /// on read). On a single-requester hierarchy this is *the* statistics
    /// view; on a shared hierarchy prefer [`stats_of`](Self::stats_of) and
    /// [`shared_stats`](Self::shared_stats).
    pub fn stats(&self) -> MemStats {
        self.stats_of(0)
    }

    /// Accumulated statistics attributed to `requester`: its private L1s,
    /// MSHR counters, and LLC misses, plus the shared L2/DRAM totals
    /// (which all requesters observe identically).
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range for the hierarchy.
    pub fn stats_of(&self, requester: usize) -> MemStats {
        let pc = &self.cores[requester]; // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition (indexing is the check)
        MemStats {
            l1i: pc.l1i.stats(),
            l1d: pc.l1d.stats(),
            l2: self.l2.stats(),
            llc_demand_misses: pc.llc_demand_misses,
            dram_transfers: self.dram.transfers(),
            mshr_merges: pc.mshr_merges,
            mshr_stall_cycles: pc.mshr_stall_cycles,
        }
    }

    /// Shared-level contention counters (see [`SharedMemStats`]): channel
    /// arbitration waits, MSHR quota stalls, and neighbor-caused LLC
    /// evictions, with a per-requester breakdown.
    pub fn shared_stats(&self) -> SharedMemStats {
        let dram_per = self.dram.requester_stats();
        SharedMemStats {
            l2: self.l2.stats(),
            dram_transfers: self.dram.transfers(),
            arb_wait_cycles: self.dram.arb_wait_cycles(),
            quota_stall_cycles: self.cores.iter().map(|c| c.mshr_stall_cycles).sum(),
            neighbor_evictions: self.neighbor_evictions,
            per_requester: self
                .cores
                .iter()
                .zip(dram_per)
                .map(|(c, d)| RequesterMemStats {
                    llc_demand_misses: c.llc_demand_misses,
                    dram_transfers: d.transfers,
                    arb_wait_cycles: d.arb_wait_cycles,
                    quota_stall_cycles: c.mshr_stall_cycles,
                })
                .collect(),
        }
    }

    /// Demand LLC misses so far across all requesters (the paper's MPKI
    /// numerator on a single-core hierarchy).
    pub fn llc_demand_misses(&self) -> u64 {
        self.cores.iter().map(|c| c.llc_demand_misses).sum()
    }

    /// Demand LLC misses attributed to `requester` — the per-core MPKI
    /// numerator a multi-core SWQUE controller switches on.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range for the hierarchy.
    pub fn llc_demand_misses_of(&self, requester: usize) -> u64 {
        self.cores[requester].llc_demand_misses // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition (indexing is the check)
    }

    fn purge(&mut self, requester: usize, now: u64) {
        // Keep the in-flight maps small; entries strictly in the past can go.
        if self.cores[requester].mshr.len() > 64 {
            self.cores[requester].mshr.retain(|_, done| *done > now);
        }
        if self.inflight_l2.len() > 256 {
            self.inflight_l2.retain(|_, done| *done > now);
        }
    }

    /// Performs an access starting at cycle `now` on behalf of requester 0;
    /// returns its timing. The single-core entry point — multi-core
    /// callers use [`access_from`](Self::access_from).
    // swque-domain: now: CycleStamp(launch), addr: ByteAddr
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> AccessResult {
        self.access_from(0, addr, kind, now)
    }

    /// Performs an access starting at cycle `now` on behalf of `requester`;
    /// returns its timing.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range for the hierarchy.
    // swque-domain: now: CycleStamp(launch), addr: ByteAddr
    pub fn access_from(
        &mut self,
        requester: usize,
        addr: u64,
        kind: AccessKind,
        now: u64,
    ) -> AccessResult {
        assert!(requester < self.cores.len(), "requester id out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        self.purge(requester, now);
        let is_data = kind != AccessKind::IFetch;
        let pc = &mut self.cores[requester];
        let l1 = if is_data { &mut pc.l1d } else { &mut pc.l1i };
        let l1_lat = l1.config().hit_latency;
        let l1_line = l1.line_addr(addr);

        if l1.access(addr) {
            // A hit may still be to a line whose fill is in flight.
            if let Some(&done) = pc.mshr.get(&l1_line) {
                if done > now && is_data {
                    return AccessResult { done_at: done, l1_hit: true, l2_hit: false };
                }
            }
            return AccessResult { done_at: now + l1_lat, l1_hit: true, l2_hit: false };
        }

        // L1 miss. Merge into an outstanding MSHR for the same line if any.
        if is_data {
            if let Some(&done) = pc.mshr.get(&l1_line) {
                if done > now {
                    pc.mshr_merges += 1;
                    return AccessResult { done_at: done, l1_hit: false, l2_hit: false };
                }
            }
        }

        // The per-requester MSHR quota limits when a new data miss may
        // start; waiting on the quota is a *private* stall (quota stalls),
        // not channel contention.
        let mut start = now;
        if is_data {
            loop {
                let busy = pc.mshr.values().filter(|&&d| d > start).count();
                if busy < self.config.mshrs {
                    break;
                }
                let Some(earliest) = pc.mshr.values().filter(|&&d| d > start).copied().min()
                else {
                    break; // busy == 0 next iteration anyway
                };
                pc.mshr_stall_cycles += earliest - start;
                start = earliest;
            }
        }

        // Shared L2 lookup.
        let l2_line = self.l2.line_addr(addr);
        let l2_lookup_at = start + l1_lat;
        let l2_hit = self.l2.access_by(addr, requester);
        let done_at;
        if l2_hit {
            let mut done = l2_lookup_at + self.config.l2.hit_latency;
            // Hit to a line still being filled (e.g. by a prefetch in
            // flight): wait for the fill.
            if let Some(&fill_done) = self.inflight_l2.get(&l2_line) {
                if fill_done > done {
                    done = fill_done;
                }
            }
            done_at = done;
        } else {
            self.cores[requester].llc_demand_misses += 1;
            let done = self.dram.request_from(requester, l2_lookup_at + self.config.l2.hit_latency);
            self.note_l2_fill(requester, addr, false);
            self.inflight_l2.insert(l2_line, done);
            done_at = done;
        }

        // Prefetcher observes the shared L2 demand stream (instruction
        // fetch streams train it too — sequential code behaves like any
        // other ascending stream at the L2). Prefetches launch at the L2
        // lookup, *not* at demand completion: a prefetch that only enters
        // the channel once the demand it rides on has fully returned would
        // arrive ~`dram_latency` cycles late and lose the timeliness race
        // it exists to win.
        let pf_issue_at = l2_lookup_at + self.config.l2.hit_latency;
        {
            if let Some(pf) = &mut self.prefetcher {
                let requests = pf.observe(l2_line, !l2_hit);
                for line in requests {
                    let byte_addr = line << self.config.l2.line_bytes.trailing_zeros();
                    if !self.l2.contains(byte_addr) {
                        let done = self.dram.request_from(requester, pf_issue_at);
                        self.note_l2_fill(requester, byte_addr, true);
                        self.inflight_l2.insert(line, done);
                    }
                }
            }
        }

        // Fill L1 and remember the outstanding miss.
        let pc = &mut self.cores[requester];
        let l1 = if is_data { &mut pc.l1d } else { &mut pc.l1i };
        l1.fill(addr, false);
        if is_data {
            pc.mshr.insert(l1_line, done_at);
        }
        if !l2_hit && self.trace.enabled() {
            self.sample_epoch(requester, now);
        }

        AccessResult { done_at, l1_hit: false, l2_hit }
    }

    /// Fills the shared L2 on behalf of `requester`, attributing any
    /// displaced neighbor footprint to the contention counters.
    fn note_l2_fill(&mut self, requester: usize, addr: u64, prefetch: bool) {
        if let Some(evicted_owner) = self.l2.fill_by(addr, prefetch, requester) {
            if evicted_owner != requester {
                self.neighbor_evictions += 1;
            }
        }
    }
}

impl WakeHorizon for MemoryHierarchy {
    /// Earliest in-flight MSHR or L2 fill completion still in the future,
    /// across every requester.
    ///
    /// `purge` is lazy (entries at or before `now` linger until the maps
    /// grow past their thresholds), so stale completions are filtered here
    /// rather than assumed absent. `dram.next_free` is deliberately *not* a
    /// horizon: bandwidth occupancy only delays requests that have not been
    /// made yet — it wakes nothing on its own.
    fn wake_horizon(&self, now: u64) -> Option<u64> {
        self.cores
            .iter()
            .flat_map(|c| c.mshr.values())
            .chain(self.inflight_l2.values())
            .copied()
            .filter(|&done| done > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, PrefetchConfig};

    fn no_prefetch() -> MemConfig {
        MemConfig { prefetch: None, ..MemConfig::default() }
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let r = m.access(0x10000, AccessKind::Load, 0);
        assert!(!r.l1_hit && !r.l2_hit);
        // l1(2) + l2(12) + dram(300)
        assert_eq!(r.done_at, 314);
        let r2 = m.access(0x10000, AccessKind::Load, r.done_at);
        assert!(r2.l1_hit);
        assert_eq!(r2.done_at, r.done_at + 2);
    }

    #[test]
    fn independent_misses_overlap_in_dram() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let a = m.access(0x100000, AccessKind::Load, 0);
        let b = m.access(0x200000, AccessKind::Load, 0);
        assert!(b.done_at < a.done_at + 50, "misses overlap, not serialize");
        assert_eq!(m.stats().llc_demand_misses, 2);
    }

    #[test]
    fn same_line_misses_merge_in_mshr() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let a = m.access(0x10000, AccessKind::Load, 0);
        let b = m.access(0x10008, AccessKind::Load, 1);
        assert_eq!(b.done_at, a.done_at, "second access waits on the same in-flight line");
        assert_eq!(m.stats().l1d.misses, 1, "tag fill happens at request time");
        assert_eq!(m.stats().llc_demand_misses, 1);
    }

    #[test]
    fn mshr_limit_serializes_excess_misses() {
        let mut cfg = no_prefetch();
        cfg.mshrs = 2;
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.access(0x100000, AccessKind::Load, 0);
        let b = m.access(0x200000, AccessKind::Load, 0);
        let c = m.access(0x300000, AccessKind::Load, 0);
        assert!(c.done_at >= a.done_at.min(b.done_at), "third miss waits for an MSHR");
        assert!(m.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        // Tiny L1 forces eviction; L2 keeps the line.
        let mut cfg = no_prefetch();
        cfg.l1d = CacheConfig { size_bytes: 128, ways: 1, line_bytes: 64, hit_latency: 2 };
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.access(0x0, AccessKind::Load, 0);
        // Conflict: same L1 set (2 sets of 64B), different L2 set.
        let _ = m.access(0x80, AccessKind::Load, a.done_at);
        let c = m.access(0x0, AccessKind::Load, 2000);
        assert!(!c.l1_hit && c.l2_hit);
        assert_eq!(c.done_at, 2000 + 2 + 12);
    }

    #[test]
    fn ifetch_uses_l1i_and_does_not_consume_mshrs() {
        let mut cfg = no_prefetch();
        cfg.mshrs = 1;
        let mut m = MemoryHierarchy::new(cfg);
        let _ = m.access(0x40, AccessKind::IFetch, 0);
        let before = m.stats();
        assert_eq!(before.l1i.accesses, 1);
        assert_eq!(before.l1d.accesses, 0);
        // A following data miss is not blocked by the ifetch miss: the
        // post-access stats must show zero MSHR stalls (snapshotting before
        // the access, as this test originally did, made the assertion
        // vacuous — it could never observe a stall the access caused).
        let d = m.access(0x100000, AccessKind::Load, 0);
        let after = m.stats();
        assert_eq!(after.mshr_stall_cycles, 0, "ifetch must not occupy a data MSHR");
        assert_eq!(after.l1d.accesses, 1);
        assert!(d.done_at <= 314 + 8, "only possible DRAM queueing, no MSHR stall");
    }

    #[test]
    fn data_miss_behind_quota_does_stall() {
        // Counterpart to the ifetch test above, proving the post-access
        // assertion is falsifiable: two *data* misses on a 1-MSHR quota
        // must record stall cycles.
        let mut cfg = no_prefetch();
        cfg.mshrs = 1;
        let mut m = MemoryHierarchy::new(cfg);
        let _ = m.access(0x100000, AccessKind::Load, 0);
        let _ = m.access(0x200000, AccessKind::Load, 0);
        assert!(m.stats().mshr_stall_cycles > 0, "second data miss waits on the quota");
    }

    #[test]
    fn streaming_load_pattern_prefetches_into_l2() {
        let mut m = MemoryHierarchy::new(MemConfig {
            prefetch: Some(PrefetchConfig::default()),
            ..MemConfig::default()
        });
        // March through memory line by line to train the prefetcher.
        let mut now = 0;
        for i in 0..64u64 {
            let r = m.access(0x40_0000 + i * 64, AccessKind::Load, now);
            now = r.done_at;
        }
        let s = m.stats();
        assert!(s.l2.prefetch_fills > 0, "prefetcher fired");
        assert!(s.l2.useful_prefetches > 0, "stream demands hit prefetched lines");
        // Prefetching means later lines are L2 hits instead of DRAM misses.
        assert!(s.llc_demand_misses < 64);
    }

    #[test]
    fn prefetches_launch_at_l2_lookup_not_demand_completion() {
        // The launch-time regression this pins: prefetch DRAM requests used
        // to be issued at the *demand's completion* cycle (which already
        // includes the full DRAM latency), so every prefetched line's fill
        // finished ~dram_latency cycles later than intended and a demand
        // arriving one round-trip later still stalled on the in-flight
        // fill. Issued at the L2 lookup, the fill is complete by then and
        // the demand pays a plain L2 hit.
        let mut m = MemoryHierarchy::new(MemConfig {
            prefetch: Some(PrefetchConfig::default()),
            ..MemConfig::default()
        });
        // Train an ascending stream far from the later probe lines.
        let base = 0x80_0000u64;
        let mut now = 0;
        for i in 0..4u64 {
            let r = m.access(base + i * 64, AccessKind::Load, now);
            now = r.done_at;
        }
        // The access at line 3 prefetched lines 4 and 5; its own DRAM time
        // was ~l1+l2+dram past `now`. One full miss round-trip later, both
        // prefetched lines must be *completed* L2 hits: done_at is exactly
        // the L1-miss + L2-hit service time, with no residual fill wait.
        let probe_at = now + 400;
        let useful_before = m.stats().l2.useful_prefetches;
        let lat = m.config().l1d.hit_latency + m.config().l2.hit_latency;
        for line in [4u64, 5] {
            let r = m.access(base + line * 64, AccessKind::Load, probe_at + line);
            assert!(!r.l1_hit && r.l2_hit, "line {line} was prefetched into L2");
            assert_eq!(
                r.done_at,
                probe_at + line + lat,
                "line {line}: prefetch fill must already be complete (launched at \
                 L2 lookup, not at demand completion)"
            );
        }
        assert_eq!(m.stats().l2.useful_prefetches, useful_before + 2);
    }

    #[test]
    fn store_allocates_like_a_load() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let w = m.access(0x50000, AccessKind::Store, 0);
        assert!(!w.l1_hit);
        let r = m.access(0x50000, AccessKind::Load, w.done_at);
        assert!(r.l1_hit, "write-allocate brought the line in");
    }

    #[test]
    fn requesters_have_private_l1s_and_quotas() {
        let mut cfg = no_prefetch();
        cfg.mshrs = 1;
        let mut m = MemoryHierarchy::shared(cfg, 2);
        // Requester 0 warms a line; requester 1 still L1-misses it (private
        // L1s) but L2-hits (shared L2).
        let a = m.access_from(0, 0x10000, AccessKind::Load, 0);
        let b = m.access_from(1, 0x10000, AccessKind::Load, a.done_at);
        assert!(!b.l1_hit && b.l2_hit, "shared L2, private L1");
        // Requester 1's quota is private: its single MSHR being busy must
        // not stall requester 0.
        let _ = m.access_from(1, 0x200000, AccessKind::Load, 5000);
        let before = m.stats_of(0).mshr_stall_cycles;
        let _ = m.access_from(0, 0x300000, AccessKind::Load, 5000);
        assert_eq!(m.stats_of(0).mshr_stall_cycles, before, "quotas are per-core");
    }

    #[test]
    fn neighbor_eviction_counted_once_owners_differ() {
        // A tiny L2 (1 set, 1 way) makes every fill an eviction.
        let mut cfg = no_prefetch();
        cfg.l2 = CacheConfig { size_bytes: 64, ways: 1, line_bytes: 64, hit_latency: 12 };
        let mut m = MemoryHierarchy::shared(cfg, 2);
        let _ = m.access_from(0, 0x10000, AccessKind::Load, 0);
        assert_eq!(m.shared_stats().neighbor_evictions, 0, "first fill displaces nothing");
        let _ = m.access_from(1, 0x20000, AccessKind::Load, 1000);
        assert_eq!(m.shared_stats().neighbor_evictions, 1, "core 1 evicted core 0's line");
        let _ = m.access_from(1, 0x30000, AccessKind::Load, 2000);
        assert_eq!(m.shared_stats().neighbor_evictions, 1, "self-eviction is not a neighbor hit");
    }

    #[test]
    fn shared_stats_sum_per_requester_counters() {
        let mut m = MemoryHierarchy::shared(no_prefetch(), 3);
        for (r, addr) in [(0usize, 0x10000u64), (1, 0x20000), (2, 0x30000), (1, 0x40000)] {
            let _ = m.access_from(r, addr, AccessKind::Load, 0);
        }
        let shared = m.shared_stats();
        let per_misses: u64 = shared.per_requester.iter().map(|p| p.llc_demand_misses).sum();
        assert_eq!(per_misses, m.llc_demand_misses());
        let per_xfers: u64 = shared.per_requester.iter().map(|p| p.dram_transfers).sum();
        assert_eq!(per_xfers, shared.dram_transfers);
        assert_eq!(m.llc_demand_misses_of(1), 2);
    }
}
