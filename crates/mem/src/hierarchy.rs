//! The full memory hierarchy: L1s backed by a unified L2 backed by DRAM,
//! with MSHR-limited miss overlap and an L2 stream prefetcher.

use std::collections::BTreeMap;

use swque_core::WakeHorizon;
use swque_trace::{TraceEvent, TraceHandle};

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::prefetch::StreamPrefetcher;
use crate::stats::MemStats;

/// The type of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store (write-allocate: timed like a load for line fill).
    Store,
    /// Instruction fetch.
    IFetch,
}

/// Timing outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available.
    pub done_at: u64,
    /// Hit in the first-level cache.
    pub l1_hit: bool,
    /// Hit in the L2 (meaningful only when `l1_hit` is false).
    pub l2_hit: bool,
}

/// The memory hierarchy timing model.
///
/// Because the functional emulator owns the data, the hierarchy only tracks
/// tags and timing. The core simulator stamps every access with the cycle at
/// which it starts; accesses may arrive out of cycle order (loads issue out
/// of order), which the model tolerates.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram: Dram,
    prefetcher: Option<StreamPrefetcher>,
    /// Outstanding L1D misses: L1-line address → completion cycle. Ordered
    /// map on purpose: `purge` and the MSHR occupancy scan iterate it, and
    /// the determinism contract (DESIGN.md §8) bans hash-order iteration
    /// on the simulated path.
    mshr: BTreeMap<u64, u64>,
    /// In-flight L2 fills (demand or prefetch): L2-line → completion cycle.
    /// Ordered for the same reason as `mshr`.
    inflight_l2: BTreeMap<u64, u64>,
    /// Observability sink (disabled by default; see
    /// [`MemoryHierarchy::set_trace`]).
    trace: TraceHandle,
    /// Epoch index of the last [`TraceEvent::MemEpoch`] sample.
    trace_epoch: u64,
    /// `(llc_demand_misses, dram_transfers)` at the last epoch boundary.
    trace_epoch_base: (u64, u64),
    stats: MemStats,
}

/// Cycles per [`TraceEvent::MemEpoch`] sample. Coarse on purpose: a sample
/// per miss would flood a bounded trace ring and evict the controller's
/// interval series, which is the series the experiments care about.
const MEM_EPOCH_CYCLES: u64 = 8192;

impl MemoryHierarchy {
    /// Creates the hierarchy from `config`.
    pub fn new(config: MemConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram: Dram::new(
                config.dram_latency,
                config.dram_bytes_per_cycle,
                config.l2.line_bytes as u64,
            ),
            prefetcher: config.prefetch.map(StreamPrefetcher::new),
            mshr: BTreeMap::new(),
            inflight_l2: BTreeMap::new(),
            trace: TraceHandle::disabled(),
            trace_epoch: 0,
            trace_epoch_base: (0, 0),
            stats: MemStats::default(),
            config,
        }
    }

    /// Connects an observability sink: the hierarchy emits one
    /// [`TraceEvent::MemEpoch`] per fixed-length (8192-cycle) epoch with
    /// the LLC-miss and DRAM-transfer deltas since the previous sample.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.clone();
    }

    /// Samples miss/transfer activity when `now` has crossed into a new
    /// epoch. Called from the demand-miss path, so epochs with no misses
    /// fold into the next sample rather than emitting empty events.
    fn sample_epoch(&mut self, now: u64) {
        let epoch = now / MEM_EPOCH_CYCLES;
        if epoch <= self.trace_epoch {
            return;
        }
        let (miss_base, xfer_base) = self.trace_epoch_base;
        let misses = self.stats.llc_demand_misses;
        let transfers = self.dram.transfers();
        self.trace.record(TraceEvent::MemEpoch {
            cycle: epoch * MEM_EPOCH_CYCLES,
            llc_misses: misses.saturating_sub(miss_base),
            dram_transfers: transfers.saturating_sub(xfer_base),
        });
        self.trace_epoch = epoch;
        self.trace_epoch_base = (misses, transfers);
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics (cache counters are merged in on read).
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.l1i = self.l1i.stats();
        s.l1d = self.l1d.stats();
        s.l2 = self.l2.stats();
        s.dram_transfers = self.dram.transfers();
        s
    }

    /// Demand LLC misses so far (the paper's MPKI numerator).
    pub fn llc_demand_misses(&self) -> u64 {
        self.stats.llc_demand_misses
    }

    fn purge(&mut self, now: u64) {
        // Keep the in-flight maps small; entries strictly in the past can go.
        if self.mshr.len() > 64 {
            self.mshr.retain(|_, done| *done > now);
        }
        if self.inflight_l2.len() > 256 {
            self.inflight_l2.retain(|_, done| *done > now);
        }
    }

    /// Performs an access starting at cycle `now`; returns its timing.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> AccessResult {
        self.purge(now);
        let is_data = kind != AccessKind::IFetch;
        let l1 = if is_data { &mut self.l1d } else { &mut self.l1i };
        let l1_lat = l1.config().hit_latency;
        let l1_line = l1.line_addr(addr);

        if l1.access(addr) {
            // A hit may still be to a line whose fill is in flight.
            if let Some(&done) = self.mshr.get(&l1_line) {
                if done > now && is_data {
                    return AccessResult { done_at: done, l1_hit: true, l2_hit: false };
                }
            }
            return AccessResult { done_at: now + l1_lat, l1_hit: true, l2_hit: false };
        }

        // L1 miss. Merge into an outstanding MSHR for the same line if any.
        if is_data {
            if let Some(&done) = self.mshr.get(&l1_line) {
                if done > now {
                    self.stats.mshr_merges += 1;
                    return AccessResult { done_at: done, l1_hit: false, l2_hit: false };
                }
            }
        }

        // MSHR occupancy limits when a new data miss may start.
        let mut start = now;
        if is_data {
            loop {
                let busy = self.mshr.values().filter(|&&d| d > start).count();
                if busy < self.config.mshrs {
                    break;
                }
                let Some(earliest) =
                    self.mshr.values().filter(|&&d| d > start).copied().min()
                else {
                    break; // busy == 0 next iteration anyway
                };
                self.stats.mshr_stall_cycles += earliest - start;
                start = earliest;
            }
        }

        // L2 lookup.
        let l2_line = self.l2.line_addr(addr);
        let l2_lookup_at = start + l1_lat;
        let l2_hit = self.l2.access(addr);
        let done_at;
        if l2_hit {
            let mut done = l2_lookup_at + self.config.l2.hit_latency;
            // Hit to a line still being filled (e.g. by a prefetch in
            // flight): wait for the fill.
            if let Some(&fill_done) = self.inflight_l2.get(&l2_line) {
                if fill_done > done {
                    done = fill_done;
                }
            }
            done_at = done;
        } else {
            self.stats.llc_demand_misses += 1;
            let done = self.dram.request(l2_lookup_at + self.config.l2.hit_latency);
            self.l2.fill(addr, false);
            self.inflight_l2.insert(l2_line, done);
            done_at = done;
        }

        // Prefetcher observes the L2 demand stream (instruction fetch
        // streams train it too — sequential code behaves like any other
        // ascending stream at the L2).
        {
            if let Some(pf) = &mut self.prefetcher {
                let requests = pf.observe(l2_line, !l2_hit);
                for line in requests {
                    let byte_addr = line << self.config.l2.line_bytes.trailing_zeros();
                    if !self.l2.contains(byte_addr) {
                        let done = self.dram.request(done_at);
                        self.l2.fill(byte_addr, true);
                        self.inflight_l2.insert(line, done);
                    }
                }
            }
        }

        // Fill L1 and remember the outstanding miss.
        l1.fill(addr, false);
        if is_data {
            self.mshr.insert(l1_line, done_at);
        }
        if !l2_hit && self.trace.enabled() {
            self.sample_epoch(now);
        }

        AccessResult { done_at, l1_hit: false, l2_hit }
    }
}

impl WakeHorizon for MemoryHierarchy {
    /// Earliest in-flight MSHR or L2 fill completion still in the future.
    ///
    /// `purge` is lazy (entries at or before `now` linger until the maps
    /// grow past their thresholds), so stale completions are filtered here
    /// rather than assumed absent. `dram.next_free` is deliberately *not* a
    /// horizon: bandwidth occupancy only delays requests that have not been
    /// made yet — it wakes nothing on its own.
    fn wake_horizon(&self, now: u64) -> Option<u64> {
        self.mshr
            .values()
            .chain(self.inflight_l2.values())
            .copied()
            .filter(|&done| done > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, PrefetchConfig};

    fn no_prefetch() -> MemConfig {
        MemConfig { prefetch: None, ..MemConfig::default() }
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let r = m.access(0x10000, AccessKind::Load, 0);
        assert!(!r.l1_hit && !r.l2_hit);
        // l1(2) + l2(12) + dram(300)
        assert_eq!(r.done_at, 314);
        let r2 = m.access(0x10000, AccessKind::Load, r.done_at);
        assert!(r2.l1_hit);
        assert_eq!(r2.done_at, r.done_at + 2);
    }

    #[test]
    fn independent_misses_overlap_in_dram() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let a = m.access(0x100000, AccessKind::Load, 0);
        let b = m.access(0x200000, AccessKind::Load, 0);
        assert!(b.done_at < a.done_at + 50, "misses overlap, not serialize");
        assert_eq!(m.stats().llc_demand_misses, 2);
    }

    #[test]
    fn same_line_misses_merge_in_mshr() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let a = m.access(0x10000, AccessKind::Load, 0);
        let b = m.access(0x10008, AccessKind::Load, 1);
        assert_eq!(b.done_at, a.done_at, "second access waits on the same in-flight line");
        assert_eq!(m.stats().l1d.misses, 1, "tag fill happens at request time");
        assert_eq!(m.stats().llc_demand_misses, 1);
    }

    #[test]
    fn mshr_limit_serializes_excess_misses() {
        let mut cfg = no_prefetch();
        cfg.mshrs = 2;
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.access(0x100000, AccessKind::Load, 0);
        let b = m.access(0x200000, AccessKind::Load, 0);
        let c = m.access(0x300000, AccessKind::Load, 0);
        assert!(c.done_at >= a.done_at.min(b.done_at), "third miss waits for an MSHR");
        assert!(m.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        // Tiny L1 forces eviction; L2 keeps the line.
        let mut cfg = no_prefetch();
        cfg.l1d = CacheConfig { size_bytes: 128, ways: 1, line_bytes: 64, hit_latency: 2 };
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.access(0x0, AccessKind::Load, 0);
        // Conflict: same L1 set (2 sets of 64B), different L2 set.
        let _ = m.access(0x80, AccessKind::Load, a.done_at);
        let c = m.access(0x0, AccessKind::Load, 2000);
        assert!(!c.l1_hit && c.l2_hit);
        assert_eq!(c.done_at, 2000 + 2 + 12);
    }

    #[test]
    fn ifetch_uses_l1i_and_does_not_consume_mshrs() {
        let mut cfg = no_prefetch();
        cfg.mshrs = 1;
        let mut m = MemoryHierarchy::new(cfg);
        let _ = m.access(0x40, AccessKind::IFetch, 0);
        let s = m.stats();
        assert_eq!(s.l1i.accesses, 1);
        assert_eq!(s.l1d.accesses, 0);
        // A following data miss is not blocked by the ifetch miss.
        let d = m.access(0x100000, AccessKind::Load, 0);
        assert_eq!(s.mshr_stall_cycles, 0);
        assert!(d.done_at <= 314 + 8, "only possible DRAM queueing, no MSHR stall");
    }

    #[test]
    fn streaming_load_pattern_prefetches_into_l2() {
        let mut m = MemoryHierarchy::new(MemConfig {
            prefetch: Some(PrefetchConfig::default()),
            ..MemConfig::default()
        });
        // March through memory line by line to train the prefetcher.
        let mut now = 0;
        for i in 0..64u64 {
            let r = m.access(0x40_0000 + i * 64, AccessKind::Load, now);
            now = r.done_at;
        }
        let s = m.stats();
        assert!(s.l2.prefetch_fills > 0, "prefetcher fired");
        assert!(s.l2.useful_prefetches > 0, "stream demands hit prefetched lines");
        // Prefetching means later lines are L2 hits instead of DRAM misses.
        assert!(s.llc_demand_misses < 64);
    }

    #[test]
    fn store_allocates_like_a_load() {
        let mut m = MemoryHierarchy::new(no_prefetch());
        let w = m.access(0x50000, AccessKind::Store, 0);
        assert!(!w.l1_hit);
        let r = m.access(0x50000, AccessKind::Load, w.done_at);
        assert!(r.l1_hit, "write-allocate brought the line in");
    }
}
