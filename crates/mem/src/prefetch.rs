//! Stream prefetcher (paper Table 2: 32 streams, 16-line distance, 2-line
//! degree, prefetching into L2).

use crate::config::PrefetchConfig;

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next line expected from the demand stream.
    next_line: u64,
    /// +1 for ascending streams, -1 for descending.
    direction: i64,
    /// How far ahead (in lines) prefetches have been issued.
    issued_ahead: u64,
    /// LRU timestamp.
    lru: u64,
    valid: bool,
}

/// How many recent miss lines the trainer remembers. Misses from distinct
/// interleaved streams (or out-of-order issue) separate adjacent-line
/// misses in time, so training must look further back than the single most
/// recent miss.
const TRAIN_HISTORY: usize = 16;

/// A classic stream prefetcher.
///
/// Trains on the L2 demand-miss address stream: a miss adjacent to any
/// recently seen miss line allocates a stream; subsequent demand accesses
/// that match a stream advance it and emit `degree` prefetch line addresses
/// up to `distance` lines ahead.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: PrefetchConfig,
    streams: Vec<Stream>,
    /// Recent demand-miss lines, used to detect new streams.
    miss_history: Vec<u64>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the given parameters.
    pub fn new(config: PrefetchConfig) -> StreamPrefetcher {
        StreamPrefetcher {
            config,
            streams: vec![
                Stream { next_line: 0, direction: 1, issued_ahead: 0, lru: 0, valid: false };
                config.streams
            ],
            miss_history: Vec::with_capacity(TRAIN_HISTORY),
            clock: 0,
            issued: 0,
        }
    }

    /// Total prefetch addresses emitted.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access to `line` at the L2 (`miss` = demand miss)
    /// and returns the line addresses to prefetch.
    pub fn observe(&mut self, line: u64, miss: bool) -> Vec<u64> {
        self.clock += 1;
        let clock = self.clock;

        // Advance an existing stream if this access matches its window.
        for s in &mut self.streams {
            if !s.valid {
                continue;
            }
            let delta = line as i64 - s.next_line as i64;
            // Accept the expected line or one slightly past it (skips).
            if s.direction * delta >= 0 && (delta * s.direction) <= 2 {
                s.lru = clock;
                s.next_line = (line as i64 + s.direction) as u64;
                s.issued_ahead = s.issued_ahead.saturating_sub((delta.unsigned_abs()).max(1));
                let mut out = Vec::new();
                for _ in 0..self.config.degree {
                    if s.issued_ahead >= self.config.distance {
                        break;
                    }
                    s.issued_ahead += 1;
                    let pf = line as i64 + s.direction * (s.issued_ahead as i64);
                    if pf >= 0 {
                        out.push(pf as u64);
                    }
                }
                self.issued += out.len() as u64;
                return out;
            }
        }

        // Train: a miss adjacent to any recent miss allocates a stream.
        if miss {
            let dir = self.miss_history.iter().rev().find_map(|&h| {
                match line as i64 - h as i64 {
                    1 => Some(1),
                    -1 => Some(-1),
                    _ => None,
                }
            });
            if let Some(direction) = dir {
                let victim =
                    self.streams.iter_mut().min_by_key(|s| if s.valid { s.lru } else { 0 });
                if let Some(victim) = victim {
                    *victim = Stream {
                        next_line: (line as i64 + direction) as u64,
                        direction,
                        issued_ahead: 0,
                        lru: clock,
                        valid: true,
                    };
                }
            }
            if self.miss_history.len() == TRAIN_HISTORY {
                self.miss_history.remove(0);
            }
            self.miss_history.push(line);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchConfig::default())
    }

    #[test]
    fn two_adjacent_misses_allocate_then_prefetch() {
        let mut p = pf();
        assert!(p.observe(100, true).is_empty(), "first miss only trains");
        assert!(p.observe(101, true).is_empty(), "second miss allocates");
        let out = p.observe(102, true);
        assert_eq!(out, vec![103, 104], "degree-2 prefetch ahead of the stream");
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = pf();
        p.observe(200, true);
        p.observe(199, true);
        let out = p.observe(198, true);
        assert_eq!(out, vec![197, 196]);
    }

    #[test]
    fn distance_caps_runahead() {
        let mut p = pf();
        p.observe(0, true);
        p.observe(1, true);
        let mut ahead: u64 = 0;
        let mut line = 2;
        // Hammer the stream without consuming prefetches: issued_ahead should
        // saturate at the configured distance.
        for _ in 0..40 {
            let out = p.observe(line, true);
            ahead = ahead.saturating_sub(1).max(0) + out.len() as u64;
            for &o in &out {
                assert!(o <= line + PrefetchConfig::default().distance, "within distance window");
            }
            line += 1;
        }
        assert!(p.issued() > 0);
    }

    #[test]
    fn interleaved_streams_both_train() {
        // Two streams whose misses alternate: A(n), B(m), A(n+1), B(m+1)...
        // A single-last-miss trainer never sees adjacent consecutive misses;
        // the history-based trainer must catch both.
        let mut p = pf();
        let mut fired = [false, false];
        for i in 0..12u64 {
            if !p.observe(1000 + i, true).is_empty() {
                fired[0] = true;
            }
            if !p.observe(5000 + i, true).is_empty() {
                fired[1] = true;
            }
        }
        assert!(fired[0] && fired[1], "both interleaved streams trained: {fired:?}");
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = pf();
        for line in [5u64, 900, 17, 4000, 33, 77777] {
            assert!(p.observe(line, true).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn stream_table_is_bounded_with_lru_reuse() {
        let mut p = StreamPrefetcher::new(PrefetchConfig { streams: 2, distance: 4, degree: 1 });
        // Allocate 3 streams; table holds 2.
        for base in [1000u64, 2000, 3000] {
            p.observe(base, true);
            p.observe(base + 1, true);
        }
        // Oldest (1000) must have been evicted; continuing it re-trains.
        assert!(p.observe(1002, true).is_empty(), "evicted stream does not advance");
    }
}
