//! Memory system configuration.

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two set count or
    /// line size, or zero ways).
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0, "cache needs at least one way"); // swque-lint: allow(panic-in-lib) — documented `# Panics` geometry check
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets.is_power_of_two() && sets > 0, "set count must be a power of two"); // swque-lint: allow(panic-in-lib) — documented `# Panics` geometry check
        sets
    }

    /// The paper's L1 I-cache: 32 KB, 8-way, 64 B lines, 1-cycle hit.
    pub fn l1i() -> CacheConfig {
        CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64, hit_latency: 1 }
    }

    /// The paper's L1 D-cache: 32 KB, 8-way, 64 B lines, 2-cycle hit.
    pub fn l1d() -> CacheConfig {
        CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64, hit_latency: 2 }
    }

    /// The paper's L2: 2 MB, 16-way, 64 B lines, 12-cycle hit.
    pub fn l2() -> CacheConfig {
        CacheConfig { size_bytes: 2 << 20, ways: 16, line_bytes: 64, hit_latency: 12 }
    }
}

/// Stream prefetcher parameters (paper Table 2: 32 streams tracked, 16-line
/// distance, 2-line degree, prefetch into L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Number of concurrently tracked streams.
    pub streams: usize,
    /// Prefetch distance ahead of the demand stream, in lines.
    pub distance: u64,
    /// Lines fetched per triggering access.
    pub degree: u64,
}

impl Default for PrefetchConfig {
    fn default() -> PrefetchConfig {
        PrefetchConfig { streams: 32, distance: 16, degree: 2 }
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 (the last-level cache).
    pub l2: CacheConfig,
    /// Minimum main-memory latency in cycles.
    pub dram_latency: u64,
    /// Main-memory bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: u64,
    /// Number of L1D miss-status-holding registers (outstanding misses).
    pub mshrs: usize,
    /// Stream prefetcher, or `None` to disable.
    pub prefetch: Option<PrefetchConfig>,
}

impl Default for MemConfig {
    /// The paper's Table 2 memory system.
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram_latency: 300,
            dram_bytes_per_cycle: 8,
            mshrs: 16,
            prefetch: Some(PrefetchConfig::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometries() {
        assert_eq!(CacheConfig::l1d().num_sets(), 64);
        assert_eq!(CacheConfig::l1i().num_sets(), 64);
        assert_eq!(CacheConfig::l2().num_sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let c = CacheConfig { size_bytes: 3000, ways: 2, line_bytes: 64, hit_latency: 1 };
        let _ = c.num_sets();
    }

    #[test]
    fn default_mem_config_matches_paper() {
        let m = MemConfig::default();
        assert_eq!(m.dram_latency, 300);
        assert_eq!(m.dram_bytes_per_cycle, 8);
        let p = m.prefetch.unwrap();
        assert_eq!((p.streams, p.distance, p.degree), (32, 16, 2));
    }
}
