//! Memory-system statistics.

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines filled by the prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines that were later demanded.
    pub useful_prefetches: u64,
}

impl CacheStats {
    /// Counter difference `self - earlier` (for measurement windows that
    /// exclude warmup).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses.saturating_sub(earlier.accesses),
            misses: self.misses.saturating_sub(earlier.misses),
            prefetch_fills: self.prefetch_fills.saturating_sub(earlier.prefetch_fills),
            useful_prefetches: self.useful_prefetches.saturating_sub(earlier.useful_prefetches),
        }
    }

    /// Demand miss rate in `[0, 1]`; zero when idle.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Aggregate memory-system counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 I-cache counters.
    pub l1i: CacheStats,
    /// L1 D-cache counters.
    pub l1d: CacheStats,
    /// L2 (last-level cache) counters.
    pub l2: CacheStats,
    /// Demand misses at the LLC (loads and stores) — the numerator of the
    /// paper's MPKI switching metric.
    pub llc_demand_misses: u64,
    /// DRAM line transfers (demand + prefetch).
    pub dram_transfers: u64,
    /// Misses merged into an existing MSHR.
    pub mshr_merges: u64,
    /// Cycles an access had to wait because all MSHRs were busy.
    pub mshr_stall_cycles: u64,
}

/// Per-requester share of the shared-level counters (one entry per core
/// in [`SharedMemStats::per_requester`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequesterMemStats {
    /// Demand LLC misses attributed to this requester.
    pub llc_demand_misses: u64,
    /// DRAM line transfers granted to this requester (demand + prefetch
    /// issued on its streams).
    pub dram_transfers: u64,
    /// Cycles this requester's DRAM requests waited on the shared channel
    /// while another requester was active.
    pub arb_wait_cycles: u64,
    /// Cycles this requester's misses stalled on its private MSHR quota.
    pub quota_stall_cycles: u64,
}

/// Contention counters for the shared levels of a multi-requester
/// hierarchy (L2, DRAM channel, MSHR quotas). All-zero contention fields
/// on a single-requester hierarchy — there is no neighbor to contend with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedMemStats {
    /// Shared L2 counters (all requesters).
    pub l2: CacheStats,
    /// DRAM line transfers (all requesters).
    pub dram_transfers: u64,
    /// Total cycles requests waited on the shared DRAM channel while
    /// another requester was active (arbitration contention).
    pub arb_wait_cycles: u64,
    /// Total cycles misses stalled on per-core MSHR quotas.
    pub quota_stall_cycles: u64,
    /// L2 evictions where the displaced line was last touched by a
    /// *different* requester than the one filling — the footprint one core
    /// steals from its neighbors.
    pub neighbor_evictions: u64,
    /// Per-requester breakdown, indexed by requester id.
    pub per_requester: Vec<RequesterMemStats>,
}

impl MemStats {
    /// Counter difference `self - earlier` (for measurement windows that
    /// exclude warmup).
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1i: self.l1i.delta(&earlier.l1i),
            l1d: self.l1d.delta(&earlier.l1d),
            l2: self.l2.delta(&earlier.l2),
            llc_demand_misses: self.llc_demand_misses.saturating_sub(earlier.llc_demand_misses),
            dram_transfers: self.dram_transfers.saturating_sub(earlier.dram_transfers),
            mshr_merges: self.mshr_merges.saturating_sub(earlier.mshr_merges),
            mshr_stall_cycles: self.mshr_stall_cycles.saturating_sub(earlier.mshr_stall_cycles),
        }
    }

    /// LLC misses per kilo-instruction, given a retired-instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.llc_demand_misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_definition() {
        let s = MemStats { llc_demand_misses: 30, ..MemStats::default() };
        assert!((s.mpki(10_000) - 3.0).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn miss_rate_idle_is_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
