//! Property tests: the cache tag array must agree with a straightforward
//! reference model (per-set LRU lists) on arbitrary access streams, and the
//! hierarchy must respect basic timing laws.
//!
//! Ported from `proptest` to the in-tree harness (`swque_rng::prop`);
//! each property keeps at least its original case count (128).

use swque_rng::prop::check;

use swque_mem::{AccessKind, Cache, CacheConfig, MemConfig, MemoryHierarchy};

/// Reference model: each set is a vector of line tags, most recently used
/// last.
#[derive(Debug)]
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
}

impl RefCache {
    fn new(c: &CacheConfig) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); c.num_sets()],
            ways: c.ways,
            line_bytes: c.line_bytes as u64,
        }
    }

    fn access_and_fill(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }
}

/// Hit/miss behaviour matches the reference LRU model exactly.
#[test]
fn cache_matches_reference_lru() {
    check(128, |g| {
        let addrs: Vec<u64> = g.vec(1..300, |g| g.gen_range(0u64..4096));
        let config = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, hit_latency: 1 };
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(&config);
        for addr in addrs {
            let model_hit = reference.access_and_fill(addr);
            let real_hit = cache.access(addr);
            assert_eq!(real_hit, model_hit, "divergence at {addr:#x}");
            if !real_hit {
                cache.fill(addr, false);
            }
        }
    });
}

/// Timing laws of the hierarchy: completions never precede the request,
/// repeat accesses are at least as fast as cold ones, and demand misses
/// are monotonically counted.
#[test]
fn hierarchy_timing_laws() {
    check(128, |g| {
        let addrs: Vec<u64> = g.vec(1..150, |g| g.gen_range(0u64..(1u64 << 24)));
        let mut mem = MemoryHierarchy::new(MemConfig { prefetch: None, ..MemConfig::default() });
        let mut now = 0u64;
        let mut last_misses = 0;
        for addr in addrs {
            let r = mem.access(addr, AccessKind::Load, now);
            assert!(r.done_at > now, "completion strictly after request");
            let misses = mem.stats().llc_demand_misses;
            assert!(misses >= last_misses);
            last_misses = misses;
            now = r.done_at;
            // An immediate repeat is an L1 hit with fixed latency.
            let again = mem.access(addr, AccessKind::Load, now);
            assert!(again.l1_hit, "just-filled line hits");
            assert_eq!(again.done_at, now + 2, "L1D hit latency");
        }
    });
}

/// Sequential streams with the prefetcher never do worse (in LLC
/// demand misses) than without it.
#[test]
fn prefetcher_never_increases_demand_misses() {
    check(128, |g| {
        let start = g.gen_range(0u64..(1u64 << 20));
        let lines = g.gen_range(8u64..80);
        let run = |prefetch: bool| {
            let mut cfg = MemConfig::default();
            if !prefetch {
                cfg.prefetch = None;
            }
            let mut mem = MemoryHierarchy::new(cfg);
            let mut now = 0;
            for i in 0..lines {
                let r = mem.access(start + i * 64, AccessKind::Load, now);
                now = r.done_at;
            }
            mem.stats().llc_demand_misses
        };
        assert!(run(true) <= run(false));
    });
}
