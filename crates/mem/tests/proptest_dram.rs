//! Property tests of the shared DRAM channel's round-robin arbitration
//! (DESIGN.md §11) and of per-requester accounting on the shared hierarchy.
//!
//! The starvation-freedom property is the one the slot-reservation design
//! exists for: under the old first-come channel, a requester that issues
//! faster than the channel drains builds an ever-growing backlog, and any
//! other requester's wait grows without bound with the flooder's backlog.
//! With the rate-cap arbiter, a flooder's grants are spaced one round-robin
//! rotation apart and the slots it declines stay reserved as holes, so a
//! *paced* requester (at most one outstanding request — the
//! latency-sensitive demand-miss pattern) claims a hole near `now` and its
//! wait stays bounded by a small constant regardless of how deep the
//! flooders' backlog has grown.

use swque_mem::Dram;
use swque_rng::prop::check;

const LATENCY: u64 = 300;
const BPC: u64 = 8;
const LINE: u64 = 64;
const TRANSFER: u64 = LINE / BPC;

/// Bound on a paced requester's channel wait under contention: one full
/// activity window (the flooder's yield cadence re-arms within it) plus a
/// few transfer slots of slack for gap expiry races. Empirically the
/// observed maximum is far lower (~3 transfer slots); the margin keeps the
/// property about *boundedness*, not an exact schedule.
const WAIT_BOUND: u64 = 2 * (LATENCY + TRANSFER) + 4 * TRANSFER;

#[test]
fn paced_requesters_are_never_starved_by_flooders() {
    check(48, |g| {
        let requesters = g.gen_range(2usize..5);
        // At least one flooder, at least one paced victim.
        let floods: Vec<bool> = (0..requesters)
            .map(|i| if i == 0 { true } else if i == requesters - 1 { false } else { g.bool() })
            .collect();
        let mut dram = Dram::shared(LATENCY, BPC, LINE, requesters);

        // Event-driven drive: each requester has a next-issue time; the
        // earliest (ties broken by id — deterministic) issues next.
        let mut next_issue: Vec<u64> = (0..requesters).map(|_| g.gen_range(0u64..16)).collect();
        let mut max_paced_wait = 0u64;
        for _ in 0..400 {
            let (r, &now) = next_issue
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t, i))
                .expect("at least one requester");
            let done = dram.request_from(r, now);
            let wait = done - LATENCY - now;
            if floods[r] {
                // Flooders fire regardless of completions: the backlog they
                // queue behind is mostly their own, so no bound is claimed.
                next_issue[r] = now + g.gen_range(1u64..4);
            } else {
                max_paced_wait = max_paced_wait.max(wait);
                assert!(
                    wait <= WAIT_BOUND,
                    "paced requester {r} waited {wait} cycles (> {WAIT_BOUND}) at t={now}"
                );
                // Paced: next request only after this one completes.
                next_issue[r] = done + g.gen_range(0u64..48);
            }
        }
        // Non-vacuity: contention must actually have happened.
        assert!(dram.arb_wait_cycles() > 0, "drive never contended; property is vacuous");
        assert!(max_paced_wait > 0, "paced requesters never waited; property is vacuous");
    });
}

#[test]
fn per_requester_transfer_and_wait_accounting_sums_to_totals() {
    check(48, |g| {
        let requesters = g.gen_range(1usize..6);
        let mut dram = Dram::shared(LATENCY, BPC, LINE, requesters);
        let mut now = 0u64;
        for _ in 0..200 {
            let r = g.gen_range(0usize..requesters);
            now += g.gen_range(0u64..20);
            let done = dram.request_from(r, now);
            assert!(done >= now + LATENCY, "service can never beat the floor latency");
        }
        let per = dram.requester_stats();
        assert_eq!(per.len(), requesters);
        assert_eq!(per.iter().map(|p| p.transfers).sum::<u64>(), dram.transfers());
        assert_eq!(
            per.iter().map(|p| p.arb_wait_cycles).sum::<u64>(),
            dram.arb_wait_cycles(),
        );
        if requesters == 1 {
            assert_eq!(dram.arb_wait_cycles(), 0, "no neighbor, no arbitration wait");
        }
    });
}
