//! Analytical circuit models of the SWQUE issue queue.
//!
//! The paper evaluates its circuits with a manual transistor-level layout
//! under MOSIS design rules, HSPICE simulation with a 16 nm predictive
//! transistor model, and McPAT for core energy (§4.1, §4.5–4.7). None of
//! that tooling is available here, so this crate provides the closest
//! analytical substitute:
//!
//! * [`transistors`] — structural transistor counts for every IQ circuit
//!   (wakeup CAM, select tree-arbiters, tag RAM, payload RAM, age matrix,
//!   DTM), derived from queue geometry.
//! * [`area`] — areas via the paper's published transistor densities
//!   (Table 5), reproducing Figure 13's relative circuit sizes, the 17%
//!   IQ-area overhead, and Table 6's cost-vs-Skylake ratios.
//! * [`delay`] — stage delays in the wakeup→select→tag-read critical path,
//!   calibrated to the paper's §4.7 measurements (double tag-RAM access =
//!   66% of the IQ critical path, payload read = 43%, DTM = +1.3%).
//! * [`energy`] — per-event IQ energy fed by simulator statistics,
//!   reproducing Figure 12 (SWQUE ≈ idealized SHIFT + ~0.5%).
//!
//! Where the paper publishes a measured value, this model is calibrated to
//! it at the paper's geometry (128 entries, 6-wide) and *scales
//! structurally* elsewhere, so sweeps over queue size and issue width
//! remain meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod delay;
pub mod energy;
mod geometry;
pub mod transistors;

pub use geometry::{IqGeometry, WakeupStyle};
