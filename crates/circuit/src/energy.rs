//! Energy model of the IQ, fed by simulator event counts — the McPAT
//! substitute behind Figure 12.
//!
//! The paper compares SWQUE against an idealized shifting queue (I-SHIFT,
//! no compaction energy — which is exactly what this repository's SHIFT
//! model is) and finds SWQUE costs only ~0.5% more energy, because the
//! SWQUE-specific operations (the second select logic and the time-sliced
//! second tag-RAM read) are tiny next to the CAM wakeup broadcasts and
//! payload accesses. As in the paper (§4.5), age-matrix energy is excluded:
//! it would add the same constant to both sides.

use swque_cpu::SimResult;

use crate::geometry::{IqGeometry, WakeupStyle};
use crate::transistors::counts;

/// Energy per wakeup broadcast, per entry searched (CAM match), in
/// arbitrary energy units (EU).
const E_CAM_PER_ENTRY: f64 = 0.010;
/// Energy per select arbitration per tree level.
const E_SELECT_PER_LEVEL: f64 = 0.080;
/// Energy per tag-RAM read (small 8T array).
const E_TAG_READ: f64 = 0.050;
/// Energy per payload-RAM access (read at issue, write at dispatch).
const E_PAYLOAD: f64 = 0.400;
/// Leakage per cycle per million transistors.
const LEAK_PER_MTRANSISTOR: f64 = 2.0;

/// An energy breakdown in the shape of Figure 12's stacked bars.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Leakage of the baseline IQ structures over the run.
    pub static_basic: f64,
    /// Dynamic energy of the baseline operations (wakeup, select, tag read,
    /// payload access).
    pub dynamic_basic: f64,
    /// Leakage of the SWQUE-specific structures (second select logic, DTM).
    pub static_swque: f64,
    /// Dynamic energy of the SWQUE-specific operations (S_RV arbitration
    /// and the second, time-sliced tag-RAM reads).
    pub dynamic_swque: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.static_basic + self.dynamic_basic + self.static_swque + self.dynamic_swque
    }

    /// This breakdown's total relative to another's (Figure 12's y-axis).
    pub fn relative_to(&self, other: &EnergyBreakdown) -> f64 {
        self.total() / other.total()
    }
}

/// Computes the IQ energy of a simulation run.
///
/// `swque_hardware` selects whether the SWQUE additions (second select
/// logic + DTM) exist — they leak even when idle. Their dynamic activity is
/// inferred from the run's statistics (extra tag reads beyond one per
/// issue are CIRC-PC's time-sliced RV reads).
pub fn iq_energy(r: &SimResult, g: &IqGeometry, swque_hardware: bool) -> EnergyBreakdown {
    let c = counts(g);
    let levels = (g.entries as f64).log2() / 2.0;
    let entries = g.entries as f64;

    // A CAM broadcast searches every entry; a RAM-type wakeup reads one
    // dependency-matrix row, at roughly a third of the energy per event
    // (the structure trades area for cheaper broadcasts).
    let e_broadcast = match g.wakeup {
        WakeupStyle::Cam => E_CAM_PER_ENTRY * entries,
        WakeupStyle::Ram => E_CAM_PER_ENTRY * entries / 3.0,
    };
    let dynamic_basic = r.iq.wakeups as f64 * e_broadcast
        + r.iq.selects as f64 * E_SELECT_PER_LEVEL * levels
        + r.iq.issued as f64 * (E_TAG_READ + E_PAYLOAD)
        + r.iq.dispatched as f64 * E_PAYLOAD;
    let static_basic =
        r.cycles as f64 * c.baseline_total() as f64 / 1e6 * LEAK_PER_MTRANSISTOR;

    let (static_swque, dynamic_swque) = if swque_hardware {
        let extra_tag_reads = r.iq.tag_reads.saturating_sub(r.iq.issued);
        // Each extra tag read came from an S_RV selection, which also paid
        // an arbitration in the second select logic — a quarter of a full
        // arbitration's energy, since only the (small) RV subset toggles.
        let dynamic =
            extra_tag_reads as f64 * (E_TAG_READ + 0.25 * E_SELECT_PER_LEVEL * levels);
        let stat =
            r.cycles as f64 * c.swque_additions() as f64 / 1e6 * LEAK_PER_MTRANSISTOR;
        (stat, dynamic)
    } else {
        (0.0, 0.0)
    };

    EnergyBreakdown { static_basic, dynamic_basic, static_swque, dynamic_swque }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_cpu::{CoreStats, SimResult};

    fn result(cycles: u64, issued: u64, tag_reads: u64) -> SimResult {
        let mut iq = swque_core_stats();
        iq.wakeups = issued; // one broadcast per completed instruction
        iq.selects = cycles;
        iq.issued = issued;
        iq.dispatched = issued;
        iq.tag_reads = tag_reads;
        SimResult {
            cycles,
            retired: issued,
            iq,
            swque: None,
            mem: Default::default(),
            branch: Default::default(),
            core: CoreStats::default(),
            invariant: None,
        }
    }

    fn swque_core_stats() -> swque_core::IqStats {
        swque_core::IqStats::default()
    }

    #[test]
    fn swque_specific_energy_is_marginal() {
        // A run shaped like the paper's: ~2 IPC, RV path used by ~15% of
        // issues. SWQUE-specific energy must be a sliver (Figure 12: total
        // is only ~0.5% above I-SHIFT).
        let g = IqGeometry::medium();
        let ishift = iq_energy(&result(500_000, 1_000_000, 1_000_000), &g, false);
        let swque = iq_energy(&result(500_000, 1_000_000, 1_150_000), &g, true);
        let ratio = swque.relative_to(&ishift);
        assert!(
            (1.001..1.03).contains(&ratio),
            "SWQUE should cost only slightly more than I-SHIFT: {ratio:.4}"
        );
        assert!(swque.dynamic_swque < 0.02 * swque.total());
        assert!(swque.static_swque < 0.02 * swque.total());
        assert!(
            swque.static_basic > 0.03 * swque.total(),
            "leakage should be a visible slice of the bar"
        );
    }

    #[test]
    fn dynamic_energy_dominated_by_wakeup_and_payload() {
        let g = IqGeometry::medium();
        let e = iq_energy(&result(500_000, 1_000_000, 1_000_000), &g, false);
        assert!(e.dynamic_basic > e.static_basic, "an active queue is dynamic-dominated");
    }

    #[test]
    fn longer_runs_leak_more() {
        // Same work over more cycles: leakage grows (the paper's point that
        // slower queues pay in static energy through execution time).
        let g = IqGeometry::medium();
        let fast = iq_energy(&result(400_000, 1_000_000, 1_000_000), &g, false);
        let slow = iq_energy(&result(800_000, 1_000_000, 1_000_000), &g, false);
        assert!(slow.static_basic > fast.static_basic);
        assert!(slow.total() > fast.total());
    }

    #[test]
    fn ram_wakeup_trades_dynamic_for_static() {
        let cam = IqGeometry::medium();
        let ram = IqGeometry { wakeup: crate::WakeupStyle::Ram, ..IqGeometry::medium() };
        let r = result(500_000, 1_000_000, 1_000_000);
        let e_cam = iq_energy(&r, &cam, false);
        let e_ram = iq_energy(&r, &ram, false);
        assert!(e_ram.dynamic_basic < e_cam.dynamic_basic, "cheaper broadcasts");
        assert!(e_ram.static_basic > e_cam.static_basic, "bigger structure leaks more");
    }

    #[test]
    fn zero_activity_zero_dynamic() {
        let g = IqGeometry::medium();
        let e = iq_energy(&result(0, 0, 0), &g, true);
        assert_eq!(e.dynamic_basic, 0.0);
        assert_eq!(e.total(), 0.0);
    }
}
