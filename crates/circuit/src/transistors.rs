//! Structural transistor counts for the IQ circuits.
//!
//! Cell choices follow the paper's §2.2 circuit descriptions: 8T SRAM cells
//! for the tag RAM (§2.2.3 explains why 8T, citing Intel's 45 nm switch),
//! ~10T CAM cells for the wakeup logic, 4-ary tree arbiters for the select
//! logic, and a bit-cell matrix for the age matrix.

use crate::geometry::{IqGeometry, WakeupStyle};

/// Transistors per 8T SRAM bit cell.
const SRAM_8T: u64 = 8;
/// Transistors per wakeup CAM bit cell (XOR-match cell + ready logic
/// amortized).
const CAM_CELL: u64 = 10;
/// Extra per-entry wakeup transistors (ready flags, request AND, entry
/// slice control per Figure 5).
const WAKEUP_ENTRY_OVERHEAD: u64 = 24;
/// Transistors per 4-input arbiter node (priority encode + grant decode).
const ARBITER_NODE: u64 = 57;
/// Transistors per age-matrix cell (storage bit + AND into the row's
/// wired-OR).
const AGE_CELL: u64 = 4;
/// Transistors per dependency-matrix cell for RAM-type wakeup (storage +
/// row read-out), per tracked source operand.
const DEP_CELL: u64 = 3;
/// Transistors per DTM multiplexer bit (2:1 mux + pending tag latch,
/// amortized over the merge network of Figure 6).
const DTM_BIT: u64 = 14;

/// Transistor counts per IQ structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransistorCounts {
    /// Wakeup CAM array (2 source tags per entry).
    pub wakeup: u64,
    /// One select logic (IW stacked tree arbiters).
    pub select: u64,
    /// Destination-tag RAM (8T cells).
    pub tag_ram: u64,
    /// Payload RAM.
    pub payload: u64,
    /// One age matrix.
    pub age_matrix: u64,
    /// Destination tag multiplexer (CIRC-PC/SWQUE only).
    pub dtm: u64,
}

impl TransistorCounts {
    /// Baseline IQ total (wakeup + one select + tag RAM + payload + one age
    /// matrix) — the denominator of the paper's 17% overhead claim.
    pub fn baseline_total(&self) -> u64 {
        self.wakeup + self.select + self.tag_ram + self.payload + self.age_matrix
    }

    /// SWQUE additions: the second select logic and the DTM.
    pub fn swque_additions(&self) -> u64 {
        self.select + self.dtm
    }
}

/// Number of internal nodes in a 4-ary arbiter tree over `leaves` inputs.
fn quad_tree_nodes(leaves: usize) -> u64 {
    let mut nodes = 0u64;
    let mut width = leaves;
    while width > 1 {
        width = width.div_ceil(4);
        nodes += width as u64;
    }
    nodes.max(1)
}

/// Computes per-structure transistor counts for `g`.
pub fn counts(g: &IqGeometry) -> TransistorCounts {
    let entries = g.entries as u64;
    let tag_bits = g.tag_bits as u64;
    let iw = g.issue_width as u64;
    let wakeup = match g.wakeup {
        WakeupStyle::Cam => entries * (2 * tag_bits * CAM_CELL + WAKEUP_ENTRY_OVERHEAD),
        // RAM type: an entries x entries dependency matrix (two source
        // slots folded into one cell) plus per-entry ready logic.
        WakeupStyle::Ram => entries * entries * DEP_CELL + entries * WAKEUP_ENTRY_OVERHEAD,
    };
    TransistorCounts {
        wakeup,
        select: iw * quad_tree_nodes(g.entries) * ARBITER_NODE,
        tag_ram: entries * tag_bits * SRAM_8T + entries * 6, // + wordline drivers
        payload: entries * g.payload_bits as u64 * SRAM_8T,
        age_matrix: entries * entries * AGE_CELL,
        dtm: iw * tag_bits * DTM_BIT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_tree_node_counts() {
        assert_eq!(quad_tree_nodes(4), 1);
        assert_eq!(quad_tree_nodes(16), 5); // 4 + 1
        assert_eq!(quad_tree_nodes(128), 32 + 8 + 2 + 1);
    }

    #[test]
    fn age_matrix_is_the_largest_structure_by_count() {
        // The paper calls the age matrix "a large circuit compared with the
        // other circuits in the IQ" (§4.9).
        let c = counts(&IqGeometry::medium());
        assert!(c.age_matrix > c.wakeup);
        assert!(c.age_matrix > c.select);
        assert!(c.age_matrix > c.tag_ram);
    }

    #[test]
    fn tag_ram_is_small() {
        let c = counts(&IqGeometry::medium());
        assert!(c.tag_ram < c.wakeup / 2, "tag RAM is a small circuit (Figure 13)");
    }

    #[test]
    fn counts_scale_with_geometry() {
        let m = counts(&IqGeometry::medium());
        let l = counts(&IqGeometry::large());
        assert!(l.wakeup > m.wakeup);
        assert!(l.select > m.select);
        assert!(l.age_matrix >= m.age_matrix * 4 - 8, "age matrix grows quadratically");
    }

    #[test]
    fn ram_wakeup_is_larger_but_plausible() {
        // The dependency matrix grows quadratically: at 128 entries it is
        // bigger than the CAM (that is POWER8's area trade for cheaper
        // broadcasts), and it dwarfs it at 256.
        let cam = counts(&IqGeometry::medium());
        let ram = counts(&IqGeometry { wakeup: WakeupStyle::Ram, ..IqGeometry::medium() });
        assert!(ram.wakeup > cam.wakeup);
        assert_eq!(ram.select, cam.select, "only the wakeup structure changes");
    }

    #[test]
    fn dtm_is_tiny() {
        let c = counts(&IqGeometry::medium());
        assert!(c.dtm * 15 < c.select, "the DTM is negligible next to a select logic");
    }
}
