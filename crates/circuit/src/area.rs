//! Area model: transistor counts divided by the paper's published
//! transistor densities (Table 5), with an absolute scale calibrated to
//! Table 6's 0.0029 mm² additional-select-logic area at 14 nm.

use crate::geometry::IqGeometry;
use crate::transistors::{counts, TransistorCounts};

/// Transistor densities in the paper's Table 5, in units of
/// 10⁻³ transistors per λ².
pub mod density {
    /// Tag RAM (author's layout).
    pub const TAG_RAM: f64 = 1.399;
    /// Wakeup logic (author's layout).
    pub const WAKEUP: f64 = 1.586;
    /// Select logic (author's layout).
    pub const SELECT: f64 = 0.740;
    /// Age matrix (author's layout).
    pub const AGE_MATRIX: f64 = 1.708;
    /// Payload RAM is not listed in Table 5; SRAM-like density is assumed.
    pub const PAYLOAD: f64 = 1.399;
    /// DTM (mux + latches): select-logic-like random logic.
    pub const DTM: f64 = 0.740;
    /// Reference: Sun 512 KB L2 cache (one of the densest structures).
    pub const REF_L2_CACHE: f64 = 3.957;
    /// Reference: Fujitsu 54-bit FP multiplier (dense logic array).
    pub const REF_MULTIPLIER: f64 = 0.726;
    /// Reference: the entire Intel Skylake processor chip.
    pub const REF_SKYLAKE: f64 = 0.701;
}

/// λ² in µm² at the paper's 14 nm comparison node. Calibrated so that one
/// additional select logic (plus the DTM) occupies Table 6's 0.0029 mm².
const LAMBDA2_UM2_14NM: f64 = 1.41e-4;

/// Intel Skylake core area implied by Table 6 (0.0029 mm² = 0.034%).
pub const SKYLAKE_CORE_MM2: f64 = 0.0029 / 0.000_34;
/// Intel Skylake chip-compute area implied by Table 6 (0.0029 mm² = 0.010%).
pub const SKYLAKE_CHIP_MM2: f64 = 0.0029 / 0.000_10;

/// Per-structure areas in λ².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqAreas {
    /// Wakeup CAM.
    pub wakeup: f64,
    /// One select logic.
    pub select: f64,
    /// Tag RAM.
    pub tag_ram: f64,
    /// Payload RAM.
    pub payload: f64,
    /// One age matrix.
    pub age_matrix: f64,
    /// DTM.
    pub dtm: f64,
}

impl IqAreas {
    /// Baseline IQ area (single select logic, one age matrix).
    pub fn baseline_total(&self) -> f64 {
        self.wakeup + self.select + self.tag_ram + self.payload + self.age_matrix
    }

    /// Area added by SWQUE (second select logic + DTM).
    pub fn swque_addition(&self) -> f64 {
        self.select + self.dtm
    }

    /// SWQUE area overhead relative to the baseline IQ — the paper's 17%.
    pub fn overhead_fraction(&self) -> f64 {
        self.swque_addition() / self.baseline_total()
    }

    /// `(label, area)` pairs for Figure 13's relative-size chart, largest
    /// first.
    pub fn figure13_rows(&self) -> Vec<(&'static str, f64)> {
        let mut rows = vec![
            ("age matrix", self.age_matrix),
            ("payload RAM", self.payload),
            ("select logic (S_NR)", self.select),
            ("select logic (S_RV)", self.select),
            ("wakeup logic", self.wakeup),
            ("tag RAM", self.tag_ram),
            ("DTM", self.dtm),
        ];
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }
}

fn area_of(count: u64, density_e3: f64) -> f64 {
    count as f64 / (density_e3 * 1e-3)
}

/// Computes per-structure areas (λ²) for `g`.
///
/// # Example
///
/// ```
/// use swque_circuit::{area::areas, IqGeometry};
///
/// let a = areas(&IqGeometry::medium());
/// assert!((a.overhead_fraction() - 0.17).abs() < 0.02, "paper: 17% overhead");
/// ```
pub fn areas(g: &IqGeometry) -> IqAreas {
    let c: TransistorCounts = counts(g);
    IqAreas {
        wakeup: area_of(c.wakeup, density::WAKEUP),
        select: area_of(c.select, density::SELECT),
        tag_ram: area_of(c.tag_ram, density::TAG_RAM),
        payload: area_of(c.payload, density::PAYLOAD),
        age_matrix: area_of(c.age_matrix, density::AGE_MATRIX),
        dtm: area_of(c.dtm, density::DTM),
    }
}

/// Converts a λ² area to mm² at the 14 nm comparison node.
pub fn lambda2_to_mm2(area_lambda2: f64) -> f64 {
    area_lambda2 * LAMBDA2_UM2_14NM / 1e6
}

/// Table 6's cost rows: the SWQUE addition in mm² and relative to the
/// Skylake core and chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Additional area in mm² (14 nm).
    pub additional_mm2: f64,
    /// Ratio to the Skylake core area.
    pub vs_core: f64,
    /// Ratio to the Skylake chip area.
    pub vs_chip: f64,
}

/// Computes Table 6's first three rows for `g`.
pub fn cost_summary(g: &IqGeometry) -> CostSummary {
    let add = lambda2_to_mm2(areas(g).swque_addition());
    CostSummary { additional_mm2: add, vs_core: add / SKYLAKE_CORE_MM2, vs_chip: add / SKYLAKE_CHIP_MM2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_about_17_percent() {
        let f = areas(&IqGeometry::medium()).overhead_fraction();
        assert!((0.155..=0.185).contains(&f), "paper: 17% IQ area overhead, got {f:.3}");
    }

    #[test]
    fn additional_area_matches_table6() {
        let c = cost_summary(&IqGeometry::medium());
        assert!((c.additional_mm2 - 0.0029).abs() < 0.0003, "got {} mm2", c.additional_mm2);
        assert!((c.vs_core - 0.000_34).abs() < 0.000_05, "0.034% of a Skylake core");
        assert!((c.vs_chip - 0.000_10).abs() < 0.000_02, "0.010% of the Skylake chip");
    }

    #[test]
    fn age_matrix_largest_of_the_table5_structures() {
        let a = areas(&IqGeometry::medium());
        assert!(a.age_matrix > a.wakeup);
        assert!(a.age_matrix > a.select);
        assert!(a.age_matrix > a.tag_ram);
    }

    #[test]
    fn densities_sit_between_cache_and_logic() {
        // Table 5's sanity argument: every IQ circuit is sparser than the
        // L2 cache but the storage arrays are denser than the multiplier.
        for d in [density::TAG_RAM, density::WAKEUP, density::AGE_MATRIX] {
            assert!(d < density::REF_L2_CACHE);
            assert!(d > density::REF_MULTIPLIER);
            assert!(d > density::REF_SKYLAKE);
        }
        assert!(density::SELECT < density::REF_L2_CACHE);
    }

    #[test]
    fn figure13_rows_are_sorted_and_complete() {
        let rows = areas(&IqGeometry::medium()).figure13_rows();
        assert_eq!(rows.len(), 7);
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(rows[0].0, "age matrix");
        assert_eq!(rows.last().unwrap().0, "DTM");
    }

    #[test]
    fn larger_queue_costs_more() {
        let m = cost_summary(&IqGeometry::medium());
        let l = cost_summary(&IqGeometry::large());
        assert!(l.additional_mm2 > m.additional_mm2);
    }
}
