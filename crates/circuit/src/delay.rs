//! Delay model of the IQ critical path (wakeup → select → tag read),
//! calibrated to the paper's §4.7 HSPICE measurements at the medium
//! geometry:
//!
//! * two time-sliced tag-RAM accesses (including precharge) fit in 66% of
//!   the IQ critical path,
//! * a payload-RAM read is 43% of the critical path,
//! * the DTM adds 1.3% to the IQ delay.
//!
//! Delays are expressed in arbitrary units where the medium IQ critical
//! path is 100; stage terms scale structurally (wire RC grows linearly with
//! entries, arbitration depth logarithmically), so other geometries give
//! meaningful relative numbers.

use crate::geometry::IqGeometry;

/// Per-stage delays (arbitrary units; medium critical path = 100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqDelays {
    /// Tag broadcast + CAM match across all entries.
    pub wakeup: f64,
    /// Tree-arbiter select.
    pub select: f64,
    /// One tag-RAM access.
    pub tag_read: f64,
    /// Tag-RAM precharge between the two time-sliced accesses.
    pub tag_precharge: f64,
    /// Payload-RAM read (second pipeline stage).
    pub payload: f64,
    /// DTM merge-mux insertion delay.
    pub dtm: f64,
}

impl IqDelays {
    /// Wakeup + select + one tag read: the paper's IQ critical path (§2.1).
    pub fn critical_path(&self) -> f64 {
        self.wakeup + self.select + self.tag_read
    }

    /// Two tag accesses plus a precharge, as a fraction of the critical
    /// path — must stay well under 1.0 for CIRC-PC's time-sliced tag RAM to
    /// fit in a cycle (paper: 66%).
    pub fn double_tag_fraction(&self) -> f64 {
        (2.0 * self.tag_read + self.tag_precharge) / self.critical_path()
    }

    /// Payload read as a fraction of the critical path (paper: 43%).
    pub fn payload_fraction(&self) -> f64 {
        self.payload / self.critical_path()
    }

    /// Relative IQ-delay increase from inserting the DTM (paper: 1.3%).
    pub fn dtm_overhead(&self) -> f64 {
        self.dtm / self.critical_path()
    }

    /// True if CIRC-PC's time-sliced second tag access fits in the cycle.
    pub fn double_access_fits(&self) -> bool {
        self.double_tag_fraction() < 1.0
    }
}

/// Computes the stage delays for `g`.
///
/// # Example
///
/// ```
/// use swque_circuit::{delay::delays, IqGeometry};
///
/// let d = delays(&IqGeometry::medium());
/// assert!((d.double_tag_fraction() - 0.66).abs() < 0.01, "paper section 4.7");
/// assert!(d.double_access_fits());
/// ```
///
/// Structural forms: broadcast and bitline wires cross all entries (linear
/// term); the tree arbiter adds a level per 4× entries (logarithmic term);
/// the DTM is a constant mux insertion whose load grows with issue width.
pub fn delays(g: &IqGeometry) -> IqDelays {
    let n = g.entries as f64;
    let iw = g.issue_width as f64;
    let levels = (g.entries as f64).log2() / 2.0; // log4
    IqDelays {
        wakeup: 25.0 + 0.15625 * n, // 45 @ 128
        select: 7.714 * levels,     // 27 @ 128
        tag_read: 12.0 + 0.125 * n, // 28 @ 128
        tag_precharge: 6.0 + 0.03125 * n, // 10 @ 128
        payload: 20.6 + 0.175 * n,  // 43 @ 128
        dtm: 1.0 + 0.05 * iw,       // 1.3 @ IW 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_geometry_matches_section_4_7() {
        let d = delays(&IqGeometry::medium());
        assert!((d.critical_path() - 100.0).abs() < 0.5, "normalized: {}", d.critical_path());
        assert!((d.double_tag_fraction() - 0.66).abs() < 0.01, "{}", d.double_tag_fraction());
        assert!((d.payload_fraction() - 0.43).abs() < 0.01, "{}", d.payload_fraction());
        assert!((d.dtm_overhead() - 0.013).abs() < 0.001, "{}", d.dtm_overhead());
        assert!(d.double_access_fits());
    }

    #[test]
    fn double_access_still_fits_in_the_large_queue() {
        let d = delays(&IqGeometry::large());
        assert!(d.double_access_fits(), "fraction = {}", d.double_tag_fraction());
    }

    #[test]
    fn delays_grow_with_queue_size() {
        let m = delays(&IqGeometry::medium());
        let l = delays(&IqGeometry::large());
        assert!(l.critical_path() > m.critical_path());
        assert!(l.wakeup > m.wakeup);
        assert!(l.select > m.select);
    }

    #[test]
    fn dtm_overhead_is_tiny_everywhere() {
        for entries in [32, 64, 128, 256, 512] {
            let d = delays(&IqGeometry::with_entries(entries));
            assert!(d.dtm_overhead() < 0.03, "IQS={entries}: {}", d.dtm_overhead());
        }
    }
}
