//! Issue-queue geometry.

/// The wakeup-logic implementation style (paper §2.1). The paper assumes
/// the CAM type (AMD Bulldozer) and names applying SWQUE to the RAM type
/// (IBM POWER8) as future work; this repository's circuit models cover
/// both so that future-work exploration is quantitative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakeupStyle {
    /// Content-addressable wakeup: broadcast destination tags are compared
    /// against every entry's source tags (the paper's assumption).
    #[default]
    Cam,
    /// RAM-type wakeup: a dependency bit-matrix records consumers per
    /// producer; completion reads a matrix row instead of searching a CAM.
    Ram,
}

/// Physical parameters of an issue queue build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqGeometry {
    /// IQ entries (`IQS` in the paper).
    pub entries: usize,
    /// Issue width (`IW`).
    pub issue_width: usize,
    /// Destination/source tag width in bits (log2 of physical registers).
    pub tag_bits: usize,
    /// Payload-RAM bits per entry (decoded instruction + control).
    pub payload_bits: usize,
    /// Wakeup-logic implementation.
    pub wakeup: WakeupStyle,
}

impl IqGeometry {
    /// The paper's medium (Table 2) queue: 128 entries, 6-wide, 512
    /// physical registers (9-bit tags).
    pub fn medium() -> IqGeometry {
        IqGeometry { entries: 128, issue_width: 6, tag_bits: 9, payload_bits: 48, wakeup: WakeupStyle::Cam }
    }

    /// The paper's large (Table 4) queue: 256 entries, 8-wide, 1024
    /// physical registers (10-bit tags).
    pub fn large() -> IqGeometry {
        IqGeometry { entries: 256, issue_width: 8, tag_bits: 10, payload_bits: 48, wakeup: WakeupStyle::Cam }
    }

    /// A custom geometry with medium-style tag/payload widths (used for
    /// sensitivity sweeps like Table 6's 150-entry AGE).
    pub fn with_entries(entries: usize) -> IqGeometry {
        IqGeometry { entries, ..IqGeometry::medium() }
    }
}

impl Default for IqGeometry {
    fn default() -> IqGeometry {
        IqGeometry::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_style_is_expressible() {
        let g = IqGeometry { wakeup: WakeupStyle::Ram, ..IqGeometry::medium() };
        assert_eq!(g.wakeup, WakeupStyle::Ram);
        assert_eq!(IqGeometry::medium().wakeup, WakeupStyle::Cam, "paper default");
    }

    #[test]
    fn paper_geometries() {
        let m = IqGeometry::medium();
        assert_eq!((m.entries, m.issue_width), (128, 6));
        let l = IqGeometry::large();
        assert_eq!((l.entries, l.issue_width), (256, 8));
        assert_eq!(IqGeometry::with_entries(150).entries, 150);
    }
}
