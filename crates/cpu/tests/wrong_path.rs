//! Targeted tests of wrong-path execution: fetch past mispredicted
//! branches, shadow isolation, squash accounting, and interaction with
//! SWQUE's mode-switch flushes.

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig};
use swque_isa::{Assembler, Program, Reg};

/// A loop with a data-random branch (LCG parity): gshare cannot learn it,
/// so mispredictions — and wrong-path fetches — are frequent.
fn chaotic_branch_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(Reg(1), iters);
    a.li(Reg(2), 12345);
    a.li(Reg(3), 1103515245);
    a.li(Reg(4), 0);
    a.label("loop");
    a.mul(Reg(2), Reg(2), Reg(3));
    a.addi(Reg(2), Reg(2), 12345);
    a.srli(Reg(5), Reg(2), 17);
    a.andi(Reg(5), Reg(5), 1);
    a.beq(Reg(5), Reg::ZERO, "skip");
    a.addi(Reg(4), Reg(4), 1);
    a.xori(Reg(6), Reg(4), 0x55);
    a.label("skip");
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    a.finish().unwrap()
}

/// A predictable loop: after warmup there are no mispredictions, so no
/// wrong-path work either.
fn predictable_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(Reg(1), iters);
    a.li(Reg(2), 0);
    a.label("loop");
    a.add(Reg(2), Reg(2), Reg(1));
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    a.finish().unwrap()
}

#[test]
fn mispredictions_generate_and_squash_wrong_path_work() {
    let program = chaotic_branch_program(2_000);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    let r = core.run(u64::MAX);
    assert!(core.finished());
    assert!(r.branch.mispredicted > 200, "chaotic branch mispredicts: {}", r.branch.mispredicted);
    assert!(r.core.wrong_path_fetched > 0, "wrong path was fetched");
    // Everything dispatched either retired or was squashed.
    assert_eq!(r.core.dispatched, r.retired + r.core.wrong_path_squashed);
}

#[test]
fn predictable_code_fetches_no_wrong_path() {
    let program = predictable_program(3_000);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    // Skip the cold predictor.
    core.run(500);
    let before = core.result();
    let r = core.run(u64::MAX).delta(&before);
    assert!(core.finished());
    // Only the final loop exit mispredicts (the branch is taken 2999 times
    // and the predictor saturates to taken), giving one bounded wrong path.
    assert!(r.branch.mispredicted <= 2, "trained loop: {} mispredicts", r.branch.mispredicted);
    assert!(
        r.core.wrong_path_fetched <= 120,
        "at most one mispredict's worth of wrong path: {}",
        r.core.wrong_path_fetched
    );
}

#[test]
fn wrong_path_never_touches_architectural_state() {
    // The chaotic program's architectural result must match the functional
    // emulator exactly despite thousands of wrong-path instructions
    // (including wrong-path stores, which only ever write the shadow).
    let program = chaotic_branch_program(1_000);
    let mut reference = swque_isa::Emulator::new(&program);
    reference.run(10_000_000).unwrap();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    core.run(u64::MAX);
    assert!(core.result().core.wrong_path_fetched > 0);
    assert_eq!(core.emulator().int_reg(Reg(4)), reference.int_reg(Reg(4)));
    assert_eq!(core.emulator().int_reg(Reg(2)), reference.int_reg(Reg(2)));
}

#[test]
fn wrong_path_loads_pollute_the_caches() {
    // Wrong-path loads access the memory hierarchy (that is the realistic
    // cost of speculation): the chaotic program's D-cache access count must
    // exceed its retired loads. The body has no correct-path loads at all,
    // so any D-cache access is wrong-path. (Wrong-path code re-executes the
    // loop body, which contains no loads either — so instead check that
    // fetch activity and squash accounting stay consistent.)
    let program = chaotic_branch_program(1_500);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    let r = core.run(u64::MAX);
    assert!(r.core.wrong_path_squashed <= r.core.wrong_path_fetched);
    assert!(
        r.core.wrong_path_squashed * 10 >= r.core.wrong_path_fetched,
        "most fetched wrong-path instructions reach the ROB before the squash"
    );
}

#[test]
fn cold_indirect_jump_stalls_without_a_target() {
    // A `jr` with a cold BTB has no predicted target: the front end cannot
    // fetch a wrong path, it just waits for resolution.
    let mut a = Assembler::new();
    a.li(Reg(1), 20);
    a.label("loop");
    // Compute the return-style target in a register: alternate two labels.
    a.andi(Reg(2), Reg(1), 1);
    a.slti(Reg(3), Reg(2), 1);
    a.li(Reg(4), 0);
    a.label("t0");
    a.nop();
    a.label("join");
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    let program = a.finish().unwrap();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    let r = core.run(u64::MAX);
    assert!(core.finished());
    assert!(r.retired > 0);
}

#[test]
fn swque_mode_switch_drops_wrong_path_from_replay() {
    // Force frequent switches (tiny interval) on a program with constant
    // mispredictions: flushes will regularly interrupt active wrong paths.
    // Correctness (architectural equality + drain) is the assertion.
    let program = chaotic_branch_program(3_000);
    let mut reference = swque_isa::Emulator::new(&program);
    reference.run(10_000_000).unwrap();

    let mut config = CoreConfig::medium();
    config.iq.swque.interval_insts = 500;
    let mut core = Core::new(config, IqKind::Swque, &program);
    let r = core.run(u64::MAX);
    assert!(core.finished());
    assert!(r.core.mode_switch_flushes > 0 || r.swque.unwrap().switches == 0);
    assert_eq!(core.emulator().int_reg(Reg(4)), reference.int_reg(Reg(4)));
    assert_eq!(r.retired, reference.retired());
}

#[test]
fn wrong_path_depth_is_bounded_by_the_front_end() {
    // Wrong-path fetch stops at the decode-buffer bound and squashes at
    // resolution, so per-mispredict wrong-path work is bounded.
    let program = chaotic_branch_program(2_000);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    let r = core.run(u64::MAX);
    let per_mispredict = r.core.wrong_path_fetched as f64 / r.branch.mispredicted.max(1) as f64;
    assert!(
        per_mispredict < 250.0,
        "wrong path per mispredict should be bounded: {per_mispredict:.0}"
    );
}
