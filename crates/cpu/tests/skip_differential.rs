//! Skip differential: quiescence skipping (DESIGN.md §10) must be
//! *invisible* — every simulated cycle count and every statistic must come
//! out byte-identical whether the core ticks through idle windows one
//! cycle at a time or jumps them in bulk.
//!
//! Two gates:
//!
//! 1. **Lockstep differential** — for every issue-queue organization, a
//!    medium-model run with skipping on and the same run with skipping
//!    off must produce `SimResult`s whose `Debug` renderings are equal
//!    byte-for-byte (this covers every statistic field, recursively).
//!    The test also asserts non-vacuity: at least one run per kernel must
//!    actually take skips, so the equality is not trivially comparing two
//!    per-cycle runs.
//!
//! 2. **Never-overshoot property** — on random programs, tick a core
//!    per-cycle and cross-examine the pure [`Core::quiescent_horizon`]
//!    query: once it promises quiescence until `h`, the promise must hold
//!    verbatim at every intermediate cycle. If any subsystem would have
//!    changed state at a cycle `c < h`, the predicate at `c` would return
//!    `None` (or a different horizon) and the assertion fires — exactly
//!    the overshoot a bulk jump would have committed.
//!
//! Tests toggle skipping with [`Core::set_skip`], never by mutating
//! `SWQUE_NO_SKIP` (process environment is shared across test threads).

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig};
use swque_isa::{Assembler, Program, Reg};
use swque_rng::prop::check;
use swque_workloads::suite;

const RUN_INSTS: u64 = 20_000;
const SCALE: u64 = 4_000;

/// Runs `kernel` under `kind` with skipping forced on or off; returns the
/// full `SimResult` debug rendering and the `(skips, cycles_skipped)`
/// counters.
fn run(kind: IqKind, kernel: &str, skip: bool) -> (String, (u64, u64)) {
    let k = suite::by_name(kernel).expect("kernel exists");
    let program = k.build_scaled(SCALE);
    let mut core = Core::new(CoreConfig::medium(), kind, &program);
    core.set_skip(skip);
    let r = core.run(RUN_INSTS);
    (format!("{r:?}"), core.skip_stats())
}

fn differential(kernel: &str) {
    let mut any_skips = false;
    for kind in IqKind::ALL {
        let (with_skip, (skips, skipped)) = run(kind, kernel, true);
        let (without, off_stats) = run(kind, kernel, false);
        assert_eq!(off_stats, (0, 0), "{kind}: set_skip(false) must disable skipping");
        assert_eq!(
            with_skip, without,
            "{kind} on {kernel}: SimResult diverges between skip-on and skip-off"
        );
        println!("{kernel} {kind}: {skips} skips, {skipped} cycles skipped");
        if skips > 0 {
            assert!(skipped >= skips, "each skip advances at least one cycle");
            any_skips = true;
        }
    }
    assert!(
        any_skips,
        "{kernel}: no queue kind took a single skip — the differential is vacuous"
    );
}

/// ILP-bound kernel: short idle windows, exercises skip/no-skip
/// interleaving at fine grain.
#[test]
fn skip_differential_deepsjeng_like() {
    differential("deepsjeng_like");
}

/// MLP-bound kernel: long DRAM stalls, exercises large jumps and the
/// interval/stat bulk-advance paths.
#[test]
fn skip_differential_xz_like() {
    differential("xz_like");
}

/// A small random program: serial dependent loads (long idle windows)
/// mixed with ALU work and a bounded loop, guaranteed to terminate.
fn random_program(g: &mut swque_rng::prop::Gen) -> Program {
    let body: Vec<u8> = g.vec(3..16, |g| g.u8());
    let iters = g.gen_range(1u8..20);
    let mut a = Assembler::new();
    a.data_u64s(0x1000, &(0..64u64).map(|i| i * 0x9E37 + 1).collect::<Vec<_>>());
    a.li(Reg(1), iters as i64 + 1);
    a.li(Reg(2), 0x1000);
    a.li(Reg(3), 1);
    a.label("loop");
    for (i, b) in body.iter().enumerate() {
        let dst = Reg(4 + (i % 10) as u8);
        let src = Reg(4 + ((i + 7) % 10) as u8);
        match b % 6 {
            0 => a.add(dst, src, Reg(3)),
            1 => a.mul(dst, src, Reg(3)),
            2 | 3 => {
                // Dependent load chain: serializes the pipeline and opens
                // an idle window the length of the memory latency.
                a.andi(dst, src, 0x1F8);
                a.add(dst, dst, Reg(2));
                a.ld(dst, dst, 0);
            }
            4 => {
                a.andi(dst, src, 0x1F8);
                a.add(dst, dst, Reg(2));
                a.st(Reg(3), dst, 0);
            }
            _ => a.xori(dst, src, *b as i64),
        }
    }
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    a.finish().expect("valid labels")
}

/// The horizon never overshoots: once `quiescent_horizon()` promises
/// `Some(h)` at cycle `C`, per-cycle ticking must find the pipeline still
/// quiescent — with the *same* horizon — at every cycle in `(C, h)`.
/// During true quiescence nothing but the clock moves, so the pure
/// predicate must be stable; any instability means a subsystem changed
/// state inside a window a skip would have jumped over.
#[test]
fn horizon_never_overshoots() {
    check(24, |g| {
        let program = random_program(g);
        for kind in [IqKind::Shift, IqKind::CircPc, IqKind::Swque] {
            let mut core = Core::new(CoreConfig::tiny(), kind, &program);
            core.set_skip(false); // tick per-cycle; the horizon is only queried
            let mut promised: Option<u64> = None;
            let mut windows = 0u32;
            for _ in 0..200_000u32 {
                if core.finished() {
                    break;
                }
                let q = core.quiescent_horizon();
                if let Some(h) = promised {
                    if core.cycle() < h {
                        assert_eq!(
                            q,
                            Some(h),
                            "{kind}: promised quiescence until {h}, but at \
                             cycle {} the predicate changed — a skip would \
                             have jumped over a state change",
                            core.cycle()
                        );
                    }
                }
                if q.is_some() && promised != q {
                    windows += 1;
                }
                promised = q;
                core.step_cycle();
            }
            assert!(core.finished(), "{kind}: random program drains");
            assert!(windows > 0, "{kind}: no quiescent window seen — property is vacuous");
        }
    });
}
