//! Property tests of the whole core: randomly generated (guaranteed-
//! terminating) programs must produce identical architectural state under
//! every issue-queue organization, and timing invariants must hold.
//!
//! Ported from `proptest` to the in-tree harness (`swque_rng::prop`);
//! each property keeps at least its original case count (24).

use swque_rng::prop::check;

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig};
use swque_isa::{Assembler, Emulator, Program, Reg};

/// A constrained random program: an initialization block, a loop with a
/// random mix of ALU/memory/branch work, bounded iteration count.
fn random_program(body: &[u8], iters: u8) -> Program {
    let mut a = Assembler::new();
    a.data_u64s(0x1000, &(0..64u64).map(|i| i * 0x9E37 + 1).collect::<Vec<_>>());
    a.li(Reg(1), iters as i64 + 1);
    a.li(Reg(2), 0x1000);
    a.li(Reg(3), 1);
    a.label("loop");
    let mut label = 0u32;
    for (i, b) in body.iter().enumerate() {
        let dst = Reg(4 + (i % 10) as u8);
        let src = Reg(4 + ((i + 7) % 10) as u8);
        match b % 8 {
            0 => a.add(dst, src, Reg(3)),
            1 => a.xori(dst, src, *b as i64),
            2 => a.mul(dst, src, Reg(3)),
            3 => {
                // Bounded load: index by the counter.
                a.andi(dst, src, 0x1F8);
                a.add(dst, dst, Reg(2));
                a.ld(dst, dst, 0);
            }
            4 => {
                a.andi(dst, src, 0x1F8);
                a.add(dst, dst, Reg(2));
                a.st(Reg(3), dst, 0);
            }
            5 => {
                // Forward branch over one instruction.
                let l = format!("l{label}");
                label += 1;
                a.andi(Reg(14), src, 1);
                a.beq(Reg(14), Reg::ZERO, &l);
                a.addi(dst, dst, 3);
                a.label(&l);
            }
            6 => a.srai(dst, src, (*b % 13) as i64),
            _ => a.sub(dst, src, Reg(3)),
        }
    }
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    a.finish().expect("valid labels")
}

/// Scheduling policy never changes computation: all queue kinds agree
/// with the functional emulator on every architectural register.
#[test]
fn all_queues_match_functional_reference() {
    check(24, |g| {
        let body: Vec<u8> = g.vec(3..24, |g| g.u8());
        let iters = g.gen_range(1u8..30);
        let program = random_program(&body, iters);
        let mut reference = Emulator::new(&program);
        reference.run(10_000_000).expect("terminates");

        for kind in [IqKind::Shift, IqKind::CircPc, IqKind::Age, IqKind::Swque] {
            let mut core = Core::new(CoreConfig::tiny(), kind, &program);
            let result = core.run(u64::MAX);
            assert!(core.finished(), "{kind} drains");
            assert_eq!(result.retired, reference.retired(), "{kind} retire count");
            for r in 1..16u8 {
                assert_eq!(
                    core.emulator().int_reg(Reg(r)),
                    reference.int_reg(Reg(r)),
                    "{kind} r{r} diverged"
                );
            }
        }
    });
}

/// Timing sanity on random programs: cycles ≥ instructions / width, and
/// every dispatched instruction either retires or is squashed.
#[test]
fn timing_bounds_hold() {
    check(24, |g| {
        let body: Vec<u8> = g.vec(3..16, |g| g.u8());
        let iters = g.gen_range(1u8..20);
        let program = random_program(&body, iters);
        let mut core = Core::new(CoreConfig::tiny(), IqKind::Age, &program);
        let r = core.run(u64::MAX);
        assert!(r.cycles as f64 >= r.retired as f64 / 2.0, "width-2 bound");
        assert!(r.core.dispatched >= r.retired);
        assert_eq!(
            r.core.dispatched - r.retired,
            r.core.wrong_path_squashed + r.core.replayed.min(0), // squashed never retire
            "dispatch = retire + squashed"
        );
    });
}
