//! Differential tests for [`MultiCoreSim`] (DESIGN.md §11).
//!
//! The multi-core drive loop and the N-requester memory hierarchy were
//! built under a strict compatibility contract: with one core they must be
//! *bit-identical* to the standalone single-core path — same cycles, same
//! stats, same mode-switch history — with quiescence skipping enabled.
//! These tests pin that contract across every issue-queue organization by
//! comparing the full `Debug` rendering of the [`SimResult`]s, and then
//! check the genuinely multi-core properties: contention counters that are
//! provably non-vacuous under a 2-core memory-bound co-run, per-requester
//! accounting that sums to the shared totals, and skip-on/skip-off
//! equivalence of the lockstep clock jumps.

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig, MultiCoreSim};
use swque_workloads::suite;

const RUN_INSTS: u64 = 8_000;

/// N=1 `MultiCoreSim` must be byte-identical to a standalone `Core` for
/// every issue-queue kind, with skipping enabled (the default).
#[test]
fn n1_multi_core_matches_single_core_for_all_queue_kinds() {
    let kernel = suite::by_name("deepsjeng_like").expect("kernel exists");
    let program = kernel.build_scaled(2_000);
    for kind in IqKind::ALL {
        let mut single = Core::new(CoreConfig::medium(), kind, &program);
        let single_result = single.run(RUN_INSTS);

        let mut multi = MultiCoreSim::new(CoreConfig::medium(), &[(kind, &program)]);
        let multi_results = multi.run(RUN_INSTS);
        assert_eq!(multi_results.len(), 1);

        assert_eq!(
            format!("{single_result:?}"),
            format!("{:?}", multi_results[0]),
            "{kind}: N=1 MultiCoreSim diverged from the single-core path"
        );
    }
}

/// The N=1 equivalence must not depend on skipping: with jumps disabled on
/// both sides the results still match (and match the skipping run, which
/// `golden_cycles` + the core's own skip differential already pin).
#[test]
fn n1_differential_holds_with_skipping_disabled() {
    let kernel = suite::by_name("xz_like").expect("kernel exists");
    let program = kernel.build_scaled(2_000);
    let mut single = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    single.set_skip(false);
    let single_result = single.run(RUN_INSTS);

    let mut multi = MultiCoreSim::new(CoreConfig::medium(), &[(IqKind::Swque, &program)]);
    multi.set_skip(false);
    let multi_results = multi.run(RUN_INSTS);

    assert_eq!(
        format!("{single_result:?}"),
        format!("{:?}", multi_results[0]),
        "skip-off N=1 differential diverged"
    );
}

/// A memory-bound 2-core co-run must light up every contention counter the
/// shared hierarchy exists to measure: DRAM arbitration waits, MSHR quota
/// stalls (forced by a tight quota), and per-requester shares that sum to
/// the shared totals. This is the non-vacuity guarantee behind the
/// `neighbor` experiment's interference tables.
#[test]
fn two_core_corun_produces_nonzero_contention_counters() {
    let chase = suite::by_name("omnetpp_like").expect("kernel exists").build_scaled(2_000);
    let stream = suite::by_name("lbm_like").expect("kernel exists").build_scaled(2_000);
    let mut config = CoreConfig::medium();
    // Tight per-core MSHR quota: each core may keep only 2 misses in
    // flight, so an MLP burst must stall on its quota.
    config.mem.mshrs = 2;

    let mut multi = MultiCoreSim::new(
        config,
        &[(IqKind::Swque, &chase), (IqKind::Swque, &stream)],
    );
    let results = multi.run(RUN_INSTS);
    assert_eq!(results.len(), 2);
    for (i, r) in results.iter().enumerate() {
        assert!(r.retired > 0, "core {i} retired nothing");
    }

    let shared = multi.shared_stats();
    assert!(shared.arb_wait_cycles > 0, "no DRAM arbitration contention observed");
    assert!(shared.quota_stall_cycles > 0, "no MSHR quota stalls observed");
    assert!(shared.dram_transfers > 0, "co-run never reached DRAM");

    assert_eq!(shared.per_requester.len(), 2);
    let sum = |f: fn(&swque_mem::RequesterMemStats) -> u64| -> u64 {
        shared.per_requester.iter().map(f).sum()
    };
    assert_eq!(sum(|p| p.dram_transfers), shared.dram_transfers);
    assert_eq!(sum(|p| p.arb_wait_cycles), shared.arb_wait_cycles);
    assert_eq!(sum(|p| p.quota_stall_cycles), shared.quota_stall_cycles);
    assert_eq!(sum(|p| p.llc_demand_misses), multi.mem().llc_demand_misses());
    // Both cores actually used the channel (the counters aren't one-sided).
    assert!(shared.per_requester.iter().all(|p| p.dram_transfers > 0));
}

/// Multi-core quiescence skipping is an optimization, not a model change:
/// a 2-core co-run with lockstep clock jumps must produce byte-identical
/// results to the same co-run stepped cycle by cycle.
#[test]
fn two_core_skip_on_off_results_are_byte_identical() {
    let chase = suite::by_name("omnetpp_like").expect("kernel exists").build_scaled(2_000);
    let stream = suite::by_name("lbm_like").expect("kernel exists").build_scaled(2_000);
    let workloads = [(IqKind::Swque, &chase), (IqKind::AgeMulti, &stream)];

    let mut skipping = MultiCoreSim::new(CoreConfig::medium(), &workloads);
    let skipping_results = skipping.run(RUN_INSTS);

    let mut stepped = MultiCoreSim::new(CoreConfig::medium(), &workloads);
    stepped.set_skip(false);
    let stepped_results = stepped.run(RUN_INSTS);

    assert_eq!(
        format!("{skipping_results:?}"),
        format!("{stepped_results:?}"),
        "multi-core clock jumps changed simulated behavior"
    );
    let (jumps, cycles_skipped) = skipping.skip_stats();
    assert!(jumps > 0, "skip run never jumped; differential is vacuous");
    assert!(cycles_skipped > 0);
    assert_eq!(stepped.skip_stats(), (0, 0));
}
