//! Golden cycle counts: end-to-end cycle-exactness pins for the scheduling
//! hot paths.
//!
//! The bitset rewrite of wakeup/select (swque-core) must be *cycle-exact*
//! with respect to the scalar implementations it replaced: not just the
//! same IPC trend, the same cycle count on the same instruction stream.
//! These tests pin the exact `(cycles, retired)` pair of a short
//! medium-model run for every issue-queue organization on two suite
//! kernels. The expected values were recorded from the scalar
//! implementation immediately before the rewrite; any scheduling change
//! that alters simulated timing — by one cycle — fails here.
//!
//! Last re-record: the prefetch launch-time fix (prefetch DRAM requests
//! issue at the L2 lookup instead of the demand's completion cycle), which
//! made every pin faster; the per-kind deltas are tabulated in
//! EXPERIMENTS.md.
//!
//! If a *deliberate* timing model change is made, re-record the table with
//! `cargo test -p swque-cpu --test golden_cycles -- --nocapture` (each run
//! prints its actual pair) and say so in the commit message.

use swque_core::IqKind;
use swque_cpu::Core;
use swque_cpu::CoreConfig;
use swque_workloads::suite;

const RUN_INSTS: u64 = 30_000;

fn run(kind: IqKind, kernel: &str) -> (u64, u64) {
    let k = suite::by_name(kernel).expect("golden kernel exists");
    let program = k.build_scaled(6_000);
    let mut core = Core::new(CoreConfig::medium(), kind, &program);
    let r = core.run(RUN_INSTS);
    (r.cycles, r.retired)
}

fn check(kernel: &str, expected: &[(IqKind, u64, u64)]) {
    for &(kind, cycles, retired) in expected {
        let (c, r) = run(kind, kernel);
        println!("{kernel} {kind}: ({c}, {r})");
        assert_eq!(
            (c, r),
            (cycles, retired),
            "{kind} on {kernel}: got ({c}, {r}), golden ({cycles}, {retired})"
        );
    }
}

#[test]
fn golden_cycles_deepsjeng_like() {
    check(
        "deepsjeng_like",
        &[
            (IqKind::Shift, 26_431, 30_000),
            (IqKind::Circ, 29_001, 30_004),
            (IqKind::CircPpri, 28_859, 30_000),
            (IqKind::CircPc, 29_397, 30_000),
            (IqKind::Rand, 30_008, 30_001),
            (IqKind::Age, 29_795, 30_002),
            (IqKind::AgeMulti, 26_456, 30_000),
            (IqKind::Swque, 32_116, 30_002),
            (IqKind::SwqueMulti, 29_407, 30_003),
            (IqKind::Rearrange, 29_454, 30_003),
        ],
    );
}

#[test]
fn golden_cycles_xz_like() {
    check(
        "xz_like",
        &[
            (IqKind::Shift, 65_487, 30_000),
            (IqKind::Circ, 65_882, 30_000),
            (IqKind::CircPpri, 65_879, 30_000),
            (IqKind::CircPc, 67_222, 30_000),
            (IqKind::Rand, 65_488, 30_000),
            (IqKind::Age, 65_487, 30_000),
            (IqKind::AgeMulti, 65_487, 30_000),
            (IqKind::Swque, 66_109, 30_000),
            (IqKind::SwqueMulti, 66_109, 30_000),
            (IqKind::Rearrange, 65_487, 30_000),
        ],
    );
}
