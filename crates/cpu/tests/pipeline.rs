//! Integration tests for the out-of-order core: architectural correctness
//! across every issue-queue organization, plus timing sanity properties.

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig};
use swque_isa::{Assembler, FReg, Program, Reg};

/// A branchy integer loop with a dependent chain and memory traffic.
fn mixed_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(Reg(1), iters); // counter
    a.li(Reg(2), 0); // accumulator
    a.li(Reg(3), 0x1_0000); // buffer base
    a.li(Reg(4), 1);
    a.label("loop");
    a.add(Reg(2), Reg(2), Reg(1));
    a.and(Reg(5), Reg(1), Reg(4));
    a.beq(Reg(5), Reg::ZERO, "even");
    a.addi(Reg(2), Reg(2), 3);
    a.label("even");
    a.slli(Reg(6), Reg(1), 3);
    a.add(Reg(6), Reg(6), Reg(3));
    a.andi(Reg(6), Reg(6), 0xFFFF8); // keep addresses bounded
    a.st(Reg(2), Reg(6), 0);
    a.ld(Reg(7), Reg(6), 0);
    a.add(Reg(2), Reg(2), Reg(7));
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    a.finish().unwrap()
}

/// An FP dataflow kernel.
fn fp_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.data_f64s(0x100, &[1.5, 2.5, 0.5]);
    a.li(Reg(1), iters);
    a.li(Reg(2), 0x100);
    a.fld(FReg(1), Reg(2), 0);
    a.fld(FReg(2), Reg(2), 8);
    a.fld(FReg(3), Reg(2), 16);
    a.label("loop");
    a.fmul(FReg(4), FReg(1), FReg(2));
    a.fadd(FReg(5), FReg(4), FReg(3));
    a.fsub(FReg(3), FReg(5), FReg(4));
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.fst(FReg(3), Reg(2), 24);
    a.halt();
    a.finish().unwrap()
}

#[test]
fn all_iq_kinds_produce_identical_architectural_state() {
    let program = mixed_program(300);
    // Reference: pure functional execution.
    let mut reference = swque_isa::Emulator::new(&program);
    reference.run(1_000_000).unwrap();
    let want = reference.int_reg(Reg(2));

    for kind in IqKind::ALL {
        let mut core = Core::new(CoreConfig::tiny(), kind, &program);
        let result = core.run(u64::MAX);
        assert!(core.finished(), "{kind}: program must drain");
        assert_eq!(
            core.emulator().int_reg(Reg(2)),
            want,
            "{kind}: architectural result must match the functional reference"
        );
        assert_eq!(result.retired, reference.retired(), "{kind}: retire count");
        assert!(result.ipc() > 0.0, "{kind}: made progress");
    }
}

#[test]
fn fp_program_consistent_across_queues_and_sizes() {
    let program = fp_program(200);
    let mut reference = swque_isa::Emulator::new(&program);
    reference.run(1_000_000).unwrap();
    let want = reference.fp_reg(FReg(3));

    for config in [CoreConfig::tiny(), CoreConfig::medium(), CoreConfig::large()] {
        for kind in [IqKind::Shift, IqKind::CircPc, IqKind::Swque] {
            let mut core = Core::new(config.clone(), kind, &program);
            core.run(u64::MAX);
            assert_eq!(core.emulator().fp_reg(FReg(3)), want, "{kind} diverged");
        }
    }
}

#[test]
fn shift_is_at_least_as_fast_as_circ_on_a_wrapping_workload() {
    // Long dependent chains force CIRC into wrap-around + holes.
    let program = mixed_program(500);
    let ipc = |kind: IqKind| {
        let mut core = Core::new(CoreConfig::tiny(), kind, &program);
        core.run(u64::MAX).ipc()
    };
    let shift = ipc(IqKind::Shift);
    let circ = ipc(IqKind::Circ);
    assert!(
        shift >= circ * 0.999,
        "SHIFT ({shift:.3}) should not lose to CIRC ({circ:.3})"
    );
}

#[test]
fn independent_alu_stream_approaches_alu_throughput() {
    // A loop of fully independent adds: a medium core (3 iALUs, width 6)
    // should sustain well above 2 IPC once the I-cache warms (the first
    // iteration pays cold instruction misses, as any real program does).
    let mut a = Assembler::new();
    a.li(Reg(31), 60); // outer iterations
    a.label("outer");
    for i in 0..300u32 {
        let d = 1 + (i % 25) as u8;
        a.addi(Reg(d), Reg::ZERO, i as i64);
    }
    a.addi(Reg(31), Reg(31), -1);
    a.bne(Reg(31), Reg::ZERO, "outer");
    a.halt();
    let program = a.finish().unwrap();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Shift, &program);
    let r = core.run(u64::MAX);
    assert!(r.ipc() > 2.0, "independent ALU stream should flow: IPC = {:.3}", r.ipc());
}

#[test]
fn dependent_chain_is_serialized_to_one_ipc_or_less() {
    let mut a = Assembler::new();
    a.li(Reg(1), 0);
    a.li(Reg(31), 60); // outer iterations
    a.label("outer");
    for _ in 0..300 {
        a.addi(Reg(1), Reg(1), 1);
    }
    a.addi(Reg(31), Reg(31), -1);
    a.bne(Reg(31), Reg::ZERO, "outer");
    a.halt();
    let program = a.finish().unwrap();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Shift, &program);
    let r = core.run(u64::MAX);
    assert!(r.ipc() <= 1.1, "dependent chain cannot beat 1 IPC by much: {:.3}", r.ipc());
    assert!(r.ipc() > 0.7, "back-to-back issue should keep the chain near 1 IPC: {:.3}", r.ipc());
}

#[test]
fn branch_mispredictions_cost_cycles() {
    // A data-dependent unpredictable branch pattern (LCG parity) versus a
    // perfectly biased one.
    let build = |chaotic: bool| {
        let mut a = Assembler::new();
        a.li(Reg(1), 400); // iterations
        a.li(Reg(2), 12345); // lcg state
        a.li(Reg(3), 1103515245);
        a.li(Reg(4), 0);
        a.label("loop");
        if chaotic {
            a.mul(Reg(2), Reg(2), Reg(3));
            a.addi(Reg(2), Reg(2), 12345);
            a.srli(Reg(5), Reg(2), 16);
            a.andi(Reg(5), Reg(5), 1);
        } else {
            a.li(Reg(5), 1);
        }
        a.beq(Reg(5), Reg::ZERO, "skip");
        a.addi(Reg(4), Reg(4), 1);
        a.label("skip");
        a.addi(Reg(1), Reg(1), -1);
        a.bne(Reg(1), Reg::ZERO, "loop");
        a.halt();
        a.finish().unwrap()
    };
    let cycles = |p: &Program| {
        let mut core = Core::new(CoreConfig::medium(), IqKind::Age, p);
        let r = core.run(u64::MAX);
        (r.cycles, r.branch.mispredict_rate())
    };
    let (_biased_cycles, biased_rate) = cycles(&build(false));
    let (_chaos_cycles, chaos_rate) = cycles(&build(true));
    assert!(biased_rate < 0.05, "biased branch should predict well: {biased_rate:.3}");
    assert!(chaos_rate > 0.2, "LCG parity should mispredict often: {chaos_rate:.3}");
}

#[test]
fn swque_switches_modes_on_memory_intensive_code() {
    // A pointer chase over a large footprint: every load misses the LLC,
    // driving MPKI far above the threshold, so SWQUE must settle into AGE.
    let mut a = Assembler::new();
    let n = 4096u64;
    let stride = 8 * 1031 % n; // coprime stride walk
    let base = 0x10_0000u64;
    let ring: Vec<u64> = (0..n).map(|i| base + ((i * 8 + stride * 8) % (n * 8))).collect();
    a.data_u64s(base, &ring);
    a.li(Reg(1), 3000); // loads to perform
    a.li(Reg(2), base as i64);
    a.label("loop");
    a.ld(Reg(2), Reg(2), 0); // pointer chase
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    let program = a.finish().unwrap();

    let mut config = CoreConfig::medium();
    config.iq.swque.interval_insts = 1_000; // faster decisions for the test
    let mut core = Core::new(config, IqKind::Swque, &program);
    let r = core.run(u64::MAX);
    let sw = r.swque.expect("SWQUE reports mode stats");
    assert!(r.mpki() > 1.0, "pointer chase must be memory-intensive: MPKI {:.2}", r.mpki());
    assert!(sw.switches >= 1, "SWQUE should reconfigure to AGE");
    assert!(sw.cycles_age > 0, "time must be spent in AGE mode");
    assert_eq!(r.core.mode_switch_flushes, sw.switches, "each switch flushes once");
}

#[test]
fn result_stats_are_internally_consistent() {
    let program = mixed_program(200);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    let r = core.run(u64::MAX);
    assert_eq!(r.iq.issued + /* nops */ 0, r.iq.issued);
    assert!(r.iq.dispatched >= r.iq.issued);
    assert!(r.core.dispatched >= r.retired);
    assert!(r.iq.selects <= r.cycles);
    assert!(r.mem.l1d.accesses > 0);
    assert!(r.branch.predicted > 0);
}

#[test]
fn snapshot_reports_live_occupancy() {
    let program = mixed_program(300);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
    core.run(2_000);
    let snap = core.snapshot();
    assert_eq!(snap.retired, core.retired());
    assert!(snap.rob_occupancy <= 256);
    assert!(snap.iq_occupancy <= 128);
    assert!(snap.rob_occupancy >= snap.iq_occupancy, "IQ entries are a subset of the ROB");
    // Drained pipeline: everything empties.
    core.run(u64::MAX);
    let end = core.snapshot();
    assert_eq!(end.rob_occupancy, 0);
    assert_eq!(end.iq_occupancy, 0);
    assert_eq!(end.decode_occupancy, 0);
    assert_eq!(end.replay_pending, 0);
}

#[test]
fn run_is_resumable() {
    let program = mixed_program(500);
    let mut core = Core::new(CoreConfig::tiny(), IqKind::Age, &program);
    let first = core.run(100);
    assert!(first.retired >= 100);
    assert!(!core.finished());
    let second = core.run(u64::MAX);
    assert!(core.finished());
    assert!(second.retired > first.retired);
}
