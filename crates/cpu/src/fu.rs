//! Function-unit pool: per-class occupancy tracking.
//!
//! All units are pipelined (a new operation may start every cycle) except
//! the integer divider and FP divide/sqrt, which occupy their unit for the
//! full operation latency, as in SimpleScalar's resource model.

use swque_core::WakeHorizon;
use swque_isa::{FuClass, Opcode};

/// Pool of function units with busy-until bookkeeping.
#[derive(Debug, Clone)]
pub struct FuPool {
    /// `busy_until[class][unit]`: first cycle the unit is free again.
    busy_until: [Vec<u64>; 4],
}

/// Whether `op` monopolizes its unit for the full latency.
fn unpipelined(op: Opcode) -> bool {
    matches!(op, Opcode::Div | Opcode::Rem | Opcode::FDiv | Opcode::FSqrt)
}

impl FuPool {
    /// Creates a pool with `counts[c]` units of each class (indexed by
    /// [`FuClass::index`]).
    pub fn new(counts: [usize; 4]) -> FuPool {
        FuPool {
            busy_until: [
                vec![0; counts[0]],
                vec![0; counts[1]],
                vec![0; counts[2]],
                vec![0; counts[3]],
            ],
        }
    }

    /// Units of `class` free at cycle `now`.
    pub fn free_count(&self, class: FuClass, now: u64) -> usize {
        self.busy_until[class.index()].iter().filter(|&&b| b <= now).count()
    }

    /// Free counts for all classes (the issue budget).
    pub fn free_counts(&self, now: u64) -> [usize; 4] {
        [
            self.free_count(FuClass::IntAlu, now),
            self.free_count(FuClass::IntMulDiv, now),
            self.free_count(FuClass::LdSt, now),
            self.free_count(FuClass::Fpu, now),
        ]
    }

    /// Occupies one unit of the class needed by `op`, starting at `now`.
    /// Pipelined ops hold the unit's issue slot for one cycle; unpipelined
    /// ops hold it for their full latency.
    ///
    /// # Panics
    ///
    /// Panics if no unit is free (callers budget with
    /// [`free_counts`](Self::free_counts) first).
    pub fn acquire(&mut self, op: Opcode, now: u64) {
        let class = op.fu_class();
        let hold = if unpipelined(op) { op.latency() as u64 } else { 1 };
        let unit = self.busy_until[class.index()]
            .iter_mut()
            .find(|b| **b <= now)
            // swque-lint: allow(panic-in-lib) — documented `# Panics` contract: callers budget with free_counts first
            .unwrap_or_else(|| panic!("no free {class} unit at cycle {now}"));
        *unit = now + hold;
    }

    /// Releases every unit (full flush).
    pub fn reset(&mut self) {
        for class in &mut self.busy_until {
            class.fill(0);
        }
    }
}

impl WakeHorizon for FuPool {
    /// Earliest cycle a currently busy unit frees up again.
    ///
    /// In practice this never bounds a skip — quiescence requires no ready
    /// IQ entries, so nothing is waiting to acquire a unit — but the
    /// contract (DESIGN.md §10) is that every timed subsystem reports its
    /// state honestly rather than relying on the predicate's other clauses.
    fn wake_horizon(&self, now: u64) -> Option<u64> {
        self.busy_until
            .iter()
            .flatten()
            .copied()
            .filter(|&b| b > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_units_free_next_cycle() {
        let mut p = FuPool::new([2, 1, 2, 2]);
        assert_eq!(p.free_count(FuClass::IntAlu, 0), 2);
        p.acquire(Opcode::Add, 0);
        assert_eq!(p.free_count(FuClass::IntAlu, 0), 1);
        assert_eq!(p.free_count(FuClass::IntAlu, 1), 2, "pipelined: free again next cycle");
    }

    #[test]
    fn divider_blocks_for_full_latency() {
        let mut p = FuPool::new([1, 1, 1, 1]);
        p.acquire(Opcode::Div, 0);
        assert_eq!(p.free_count(FuClass::IntMulDiv, 1), 0);
        assert_eq!(p.free_count(FuClass::IntMulDiv, Opcode::Div.latency() as u64 - 1), 0);
        assert_eq!(p.free_count(FuClass::IntMulDiv, Opcode::Div.latency() as u64), 1);
    }

    #[test]
    fn multiplier_is_pipelined() {
        let mut p = FuPool::new([1, 1, 1, 1]);
        p.acquire(Opcode::Mul, 0);
        assert_eq!(p.free_count(FuClass::IntMulDiv, 1), 1, "a mul can start every cycle");
    }

    #[test]
    fn free_counts_vector() {
        let mut p = FuPool::new([3, 1, 2, 2]);
        p.acquire(Opcode::Add, 5);
        p.acquire(Opcode::Ld, 5);
        assert_eq!(p.free_counts(5), [2, 1, 1, 2]);
        assert_eq!(p.free_counts(6), [3, 1, 2, 2]);
    }

    #[test]
    fn reset_frees_everything() {
        let mut p = FuPool::new([1, 1, 1, 1]);
        p.acquire(Opcode::FDiv, 0);
        p.reset();
        assert_eq!(p.free_count(FuClass::Fpu, 0), 1);
    }

    #[test]
    #[should_panic(expected = "no free")]
    fn overcommit_panics() {
        let mut p = FuPool::new([1, 1, 1, 1]);
        p.acquire(Opcode::Add, 0);
        p.acquire(Opcode::Sub, 0);
    }
}
