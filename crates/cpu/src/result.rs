//! Simulation results and core-level statistics.

use swque_branch::BranchStats;
use swque_core::{IqStats, SwqueStats};
use swque_mem::MemStats;

/// Counters owned by the core model itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions dispatched (renamed and entered into the ROB).
    pub dispatched: u64,
    /// Loads that accessed the memory hierarchy.
    pub loads_accessed: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub loads_forwarded: u64,
    /// Cycles fetch sat blocked on an unresolved mispredicted branch.
    pub mispredict_stall_cycles: u64,
    /// Full pipeline flushes triggered by SWQUE mode switches.
    pub mode_switch_flushes: u64,
    /// Instructions replayed through the front end after a flush.
    pub replayed: u64,
    /// Cycles in which no instruction could be dispatched because the IQ
    /// had no allocatable entry (capacity pressure).
    pub iq_stall_cycles: u64,
    /// Cycles fetch sat waiting on the instruction cache.
    pub icache_stall_cycles: u64,
    /// Wrong-path instructions fetched past mispredicted branches.
    pub wrong_path_fetched: u64,
    /// Instructions removed by misprediction squashes.
    pub wrong_path_squashed: u64,
}

/// A broken pipeline invariant, reported through [`SimResult::invariant`]
/// instead of a panic.
///
/// The cycle model maintains cross-structure invariants (an issued
/// instruction is live in the ROB, `has_space` checks precede allocation,
/// the fetch oracle never faults on a well-formed program). A violation
/// means the *simulator* is buggy — results from that point on are
/// meaningless — so the core records the first violation, freezes the
/// pipeline, and surfaces the report here, where harnesses can fail the
/// run loudly without a library panic tearing down a whole sweep campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Pipeline stage that observed the violation (`"fetch"`,
    /// `"dispatch"`, `"issue"`, `"execute"`, `"progress"`, …).
    pub stage: &'static str,
    /// What was expected and what was found.
    pub detail: String,
    /// Cycle at which the violation was observed.
    pub cycle: u64,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline invariant violated in {} at cycle {}: {}", self.stage, self.cycle, self.detail)
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired (committed) instructions.
    pub retired: u64,
    /// Issue-queue counters.
    pub iq: IqStats,
    /// SWQUE mode statistics, if the queue switches modes.
    pub swque: Option<SwqueStats>,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Branch-prediction counters.
    pub branch: BranchStats,
    /// Core counters.
    pub core: CoreStats,
    /// The first pipeline-invariant violation, if the simulator wedged
    /// itself (`None` on every healthy run). Counters above cover only the
    /// cycles before the violation.
    pub invariant: Option<InvariantViolation>,
}

impl CoreStats {
    /// Counter difference `self - earlier` (for measurement windows that
    /// exclude warmup).
    pub fn delta(&self, earlier: &CoreStats) -> CoreStats {
        CoreStats {
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            loads_accessed: self.loads_accessed.saturating_sub(earlier.loads_accessed),
            loads_forwarded: self.loads_forwarded.saturating_sub(earlier.loads_forwarded),
            mispredict_stall_cycles: self
                .mispredict_stall_cycles
                .saturating_sub(earlier.mispredict_stall_cycles),
            mode_switch_flushes: self
                .mode_switch_flushes
                .saturating_sub(earlier.mode_switch_flushes),
            replayed: self.replayed.saturating_sub(earlier.replayed),
            iq_stall_cycles: self.iq_stall_cycles.saturating_sub(earlier.iq_stall_cycles),
            icache_stall_cycles: self
                .icache_stall_cycles
                .saturating_sub(earlier.icache_stall_cycles),
            wrong_path_fetched: self.wrong_path_fetched.saturating_sub(earlier.wrong_path_fetched),
            wrong_path_squashed: self
                .wrong_path_squashed
                .saturating_sub(earlier.wrong_path_squashed),
        }
    }
}

impl SimResult {
    /// The measurement window `self - earlier`: every counter becomes the
    /// difference since the `earlier` snapshot, so warmup (cold caches,
    /// cold predictors) is excluded the way the paper's 16-billion-
    /// instruction skip excludes it.
    pub fn delta(&self, earlier: &SimResult) -> SimResult {
        SimResult {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            retired: self.retired.saturating_sub(earlier.retired),
            iq: self.iq.delta(&earlier.iq),
            swque: match (&self.swque, &earlier.swque) {
                (Some(now), Some(then)) => Some(now.delta(then)),
                (now, _) => *now,
            },
            mem: self.mem.delta(&earlier.mem),
            branch: self.branch.delta(&earlier.branch),
            core: self.core.delta(&earlier.core),
            invariant: self.invariant.clone(),
        }
    }

    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction over the whole run.
    pub fn mpki(&self) -> f64 {
        self.mem.mpki(self.retired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_definition() {
        let r = SimResult {
            cycles: 500,
            retired: 1000,
            iq: IqStats::default(),
            swque: None,
            mem: MemStats::default(),
            branch: BranchStats::default(),
            core: CoreStats::default(),
            invariant: None,
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_ipc_is_zero() {
        let r = SimResult {
            cycles: 0,
            retired: 0,
            iq: IqStats::default(),
            swque: None,
            mem: MemStats::default(),
            branch: BranchStats::default(),
            core: CoreStats::default(),
            invariant: None,
        };
        assert_eq!(r.ipc(), 0.0);
    }
}
