//! Pipeline-side response to an issue-queue mode switch, as a pure function.
//!
//! The SWQUE controller decides *whether* to switch (`swque-core`'s
//! `SwqueController`); the pipeline decides *what that costs*: a full flush
//! and a fetch stall of `switch_penalty` cycles (paper §4.3's 10-cycle
//! drain-and-reconfigure window). [`Core`](crate::Core) routes its poll
//! through [`mode_switch_response`] so the cost model is a standalone
//! transition function the `swque-mc` model checker and unit tests can
//! exercise without building a pipeline.

/// What the pipeline must do after the issue queue commits a mode switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchResponse {
    /// First cycle at which fetch may run again; fetch is stalled for every
    /// cycle strictly before this mark.
    pub fetch_stalled_until: u64,
}

/// Maps the issue queue's mode-switch poll result to the pipeline response.
///
/// Returns `None` when no switch committed this cycle (`wants_switch` is
/// false): the pipeline must not flush, stall, or count anything — polling
/// is free. When a switch did commit, the response is unconditional: one
/// full flush and a fetch stall covering exactly `switch_penalty` cycles
/// starting at `cycle`. The charge is per *switch*, not per poll, which is
/// the `swque-switch-once` property the model checker enforces.
pub fn mode_switch_response(
    cycle: u64,
    switch_penalty: u64,
    wants_switch: bool,
) -> Option<SwitchResponse> {
    if !wants_switch {
        return None;
    }
    Some(SwitchResponse { fetch_stalled_until: cycle.saturating_add(switch_penalty) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_switch_is_free() {
        assert_eq!(mode_switch_response(100, 10, false), None);
        assert_eq!(mode_switch_response(0, 0, false), None);
    }

    #[test]
    fn a_switch_stalls_fetch_for_exactly_the_penalty() {
        let r = mode_switch_response(100, 10, true).unwrap();
        assert_eq!(r.fetch_stalled_until, 110);
        // A zero-penalty configuration resumes fetch on the same cycle.
        let r = mode_switch_response(7, 0, true).unwrap();
        assert_eq!(r.fetch_stalled_until, 7);
    }

    #[test]
    fn the_stall_mark_saturates_instead_of_wrapping() {
        let r = mode_switch_response(u64::MAX, 10, true).unwrap();
        assert_eq!(r.fetch_stalled_until, u64::MAX);
    }
}
