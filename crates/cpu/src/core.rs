//! The out-of-order superscalar core: a cycle-level timing model in the
//! style of SimpleScalar's `sim-outorder`, with the issue queue fully
//! pluggable via [`IqKind`].
//!
//! # Structure
//!
//! Each simulated cycle runs the pipeline stages in reverse order so that
//! same-cycle producer→consumer flow behaves like hardware:
//!
//! `commit → writeback → execute → issue → dispatch → fetch`
//!
//! * **Fetch** uses the functional [`Emulator`] as an execute-at-fetch
//!   oracle: each fetched instruction carries its architectural outcome
//!   (next pc, memory address). Branches are predicted with gshare+BTB; on a
//!   misprediction fetch *stalls* until the branch resolves (no wrong-path
//!   execution, SimpleScalar's default) and then pays the front-end refill
//!   implied by `frontend_depth`.
//! * **Dispatch** renames registers, allocates ROB/LSQ/IQ entries in program
//!   order, and stalls on any structural hazard — including the circular
//!   queues' hole-induced capacity loss, which is how CIRC's inefficiency
//!   becomes visible in IPC.
//! * **Issue** builds an [`IssueBudget`] from the free function units and
//!   asks the issue queue to select; the queue's priority policy is the
//!   paper's entire subject.
//! * **Writeback** broadcasts destination tags into the IQ one cycle before
//!   dependents can issue, giving back-to-back scheduling for single-cycle
//!   producers.
//! * **Mode switches** (SWQUE) perform a *full* pipeline flush: in-flight
//!   instructions are replayed through the front end (they are correct-path
//!   by construction), and fetch stalls for the switch penalty.
//!
//! # Quiescence skipping
//!
//! Between [`Core::step_cycle`] calls, [`Core::run`] asks
//! [`Core::quiescent_horizon`] whether the next cycle could change any
//! architectural or queue state. When it provably cannot — no ROB head
//! ready to commit, no completion event due, no ready IQ entry, every
//! pending load blocked, dispatch gated, fetch stalled or starved — the
//! clock jumps straight to the earliest [`WakeHorizon`] reported by the
//! FU pool, the memory hierarchy, and the issue queue, and the per-cycle
//! bookkeeping (`iq_stall_cycles`, queue occupancy averages, SWQUE mode
//! residency) is bulk-advanced. Results are byte-identical with skipping
//! on or off (DESIGN.md §10); `SWQUE_NO_SKIP=1` or
//! [`Core::set_skip`] force the per-cycle path.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use swque_branch::{BranchKind, BranchOutcome, BranchPredictor};
use swque_core::{min_horizon, DispatchReq, IqKind, IqMode, IssueBudget, IssueQueue, WakeHorizon};
use swque_isa::{Emulator, Opcode, Program, Retired, ShadowEmulator};
use swque_mem::{AccessKind, MemStats, MemoryHierarchy};
use swque_trace::{TraceEvent, TraceHandle};

use crate::config::CoreConfig;
use crate::fu::FuPool;
use crate::lsq::{LoadAction, Lsq};
use crate::rename::RenameState;
use crate::result::{CoreStats, InvariantViolation, SimResult};
use crate::rob::{Rob, RobEntry, RobState};
use crate::switching;

/// An instruction travelling through the front end (fetched or awaiting
/// replay after a flush).
#[derive(Debug, Clone, Copy)]
struct FrontInst {
    uid: u64,
    oracle: Retired,
}

/// A fetched instruction waiting out the front-end pipeline depth.
#[derive(Debug, Clone, Copy)]
struct DecodedInst {
    front: FrontInst,
    ready_at: u64,
    mispredicted: bool,
    /// Fetched down a mispredicted branch's wrong path.
    wp: bool,
}

/// Active wrong-path fetch state: created when the front end detects a
/// misprediction (oracle outcome vs prediction) and destroyed when the
/// branch resolves and its wrong path is squashed.
#[derive(Debug)]
struct WrongPath {
    /// uid of the mispredicted (correct-path) branch.
    branch_uid: u64,
    /// Shadow execution context running down the predicted (wrong) path.
    shadow: ShadowEmulator,
    /// The wrong path ran out (halt/invalid pc/unknown target); fetch idles
    /// until the branch resolves.
    dead: bool,
}

/// Cycles with no retirement before the simulator declares itself wedged.
const DEADLOCK_LIMIT: u64 = 2_000_000;

/// Shortest dispatch-stall run (consecutive IQ-blocked cycles) that emits a
/// [`TraceEvent::DispatchStall`] episode. Shorter runs stay visible in the
/// aggregate `iq_stall_cycles` counter; emitting each of them would flood a
/// bounded trace ring with one-cycle episodes in capacity-bound phases.
const STALL_EPISODE_MIN: u64 = 8;

/// A point-in-time view of pipeline occupancy (see [`Core::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Live reorder-buffer entries.
    pub rob_occupancy: usize,
    /// Live issue-queue entries.
    pub iq_occupancy: usize,
    /// Live load/store-queue entries.
    pub lsq_occupancy: usize,
    /// Instructions buffered in the front end.
    pub decode_occupancy: usize,
    /// Correct-path instructions awaiting replay after a flush.
    pub replay_pending: usize,
    /// A misprediction is unresolved (wrong-path fetch active or dead).
    pub wrong_path_active: bool,
    /// The issue queue's current operating mode.
    pub mode: IqMode,
}

/// The simulated core.
#[derive(Debug)]
pub struct Core {
    config: CoreConfig,
    iq: Box<dyn IssueQueue>,
    emu: Emulator,
    /// Owned hierarchy of a standalone core. `None` for a core driven over
    /// a shared hierarchy (see [`crate::MultiCoreSim`]), whose accesses go
    /// through the `_on` method variants instead.
    mem: Option<MemoryHierarchy>,
    /// This core's requester id on the memory hierarchy it is driven over
    /// (0 for a standalone core).
    requester: usize,
    bp: BranchPredictor,
    rename: RenameState,
    rob: Rob,
    lsq: Lsq,
    fus: FuPool,

    cycle: u64,
    retired: u64,
    last_retire_cycle: u64,
    next_uid: u64,
    next_seq: u64,

    /// Correct-path instructions squashed by a flush, awaiting refetch.
    replay: VecDeque<FrontInst>,
    /// Fetched instructions in the front-end pipeline.
    decode_q: VecDeque<DecodedInst>,
    fetch_stalled_until: u64,
    /// Wrong-path fetch state while a misprediction is unresolved.
    wrong_path: Option<WrongPath>,
    emu_halted: bool,
    last_fetch_line: Option<u64>,

    /// Completion events: `(cycle, seq, uid)` min-heap.
    events: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Loads whose address generation is done: `(ready_cycle, uid)`.
    pending_loads: Vec<(u64, u64)>,

    /// Observability sink (disabled by default; see [`Core::attach_trace`]).
    trace: TraceHandle,
    /// Retired count at which the next [`TraceEvent::IntervalIpc`] fires.
    next_ipc_mark: u64,
    /// `(cycle, retired)` at the previous IPC interval boundary.
    ipc_window_start: (u64, u64),
    /// Cycle the current dispatch-stall run began (`None` = not stalled).
    stall_run_start: Option<u64>,

    /// First pipeline-invariant violation (see [`Core::invariant`]); once
    /// set, the pipeline is frozen and the run loop stops.
    violation: Option<InvariantViolation>,

    /// Quiescence skipping armed (config flag ∧ no `SWQUE_NO_SKIP`; see
    /// [`Core::set_skip`]).
    skip_enabled: bool,
    /// Number of clock jumps taken (host-side observability only — never
    /// part of [`SimResult`], which must be skip-invariant).
    skips_taken: u64,
    /// Total cycles covered by those jumps.
    cycles_skipped: u64,

    stats: CoreStats,
}

impl Core {
    /// Creates a core running `program` with the issue queue `kind`,
    /// owning a private single-requester memory hierarchy.
    pub fn new(config: CoreConfig, kind: IqKind, program: &Program) -> Core {
        let mem = MemoryHierarchy::new(config.mem);
        Core::build(config, kind, program, Some(mem), 0)
    }

    /// Creates a core *without* an owned memory hierarchy, to be driven
    /// over a shared one as requester `requester` via the `_on` method
    /// variants ([`run_on`](Self::run_on), [`step_cycle_on`](Self::step_cycle_on));
    /// [`crate::MultiCoreSim`] is the intended driver. The owned-API entry
    /// points ([`run`](Self::run), [`step_cycle`](Self::step_cycle)) report
    /// an invariant violation instead of simulating.
    pub fn detached(config: CoreConfig, kind: IqKind, program: &Program, requester: usize) -> Core {
        Core::build(config, kind, program, None, requester)
    }

    fn build(
        config: CoreConfig,
        kind: IqKind,
        program: &Program,
        mem: Option<MemoryHierarchy>,
        requester: usize,
    ) -> Core {
        let iq = kind.build(&config.iq);
        let interval = config.iq.swque.interval_insts.max(1);
        // swque-lint: allow(env-read) — SWQUE_NO_SKIP is the documented skip-equivalence escape hatch (verify.sh diffs a run with and without it); tests use set_skip instead of mutating the environment
        let skip_enabled = config.skip && std::env::var_os("SWQUE_NO_SKIP").is_none();
        Core {
            emu: Emulator::new(program),
            mem,
            requester,
            bp: BranchPredictor::new(config.predictor),
            rename: RenameState::new(config.phys_int, config.phys_fp),
            rob: Rob::new(config.rob_entries),
            lsq: Lsq::new(config.lsq_entries),
            fus: FuPool::new(config.fu_counts),
            iq,
            cycle: 0,
            retired: 0,
            last_retire_cycle: 0,
            next_uid: 0,
            next_seq: 0,
            replay: VecDeque::new(),
            decode_q: VecDeque::new(),
            fetch_stalled_until: 0,
            wrong_path: None,
            emu_halted: false,
            last_fetch_line: None,
            events: BinaryHeap::new(),
            pending_loads: Vec::new(),
            trace: TraceHandle::disabled(),
            next_ipc_mark: interval,
            ipc_window_start: (0, 0),
            stall_run_start: None,
            violation: None,
            skip_enabled,
            skips_taken: 0,
            cycles_skipped: 0,
            stats: CoreStats::default(),
            config,
        }
    }

    /// Connects an observability sink: the core emits [`TraceEvent`]s into
    /// it ([`TraceEvent::IntervalIpc`], [`TraceEvent::ModeSwitch`],
    /// [`TraceEvent::DispatchStall`]) and propagates the handle to the
    /// issue queue (controller interval samples) and the memory hierarchy
    /// (epoch samples). With the default disabled handle every emission
    /// site is a single predictable branch.
    pub fn attach_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.clone();
        self.iq.attach_trace(trace);
        if let Some(mem) = &mut self.mem {
            mem.set_trace(trace);
        }
    }

    /// This core's requester id on the memory hierarchy it is driven over.
    pub fn requester(&self) -> usize {
        self.requester
    }

    /// Current cycle.
    // swque-domain: return: CycleStamp
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired instructions so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The functional emulator (architectural state oracle). After the run
    /// completes, this holds the program's final architectural state, which
    /// is identical across all issue-queue organizations — a key invariant.
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }

    /// True when the program has halted and the pipeline has drained.
    pub fn finished(&self) -> bool {
        self.emu_halted
            && self.rob.is_empty()
            && self.decode_q.is_empty()
            && self.replay.is_empty()
    }

    /// The first pipeline-invariant violation, if the simulator wedged
    /// itself (also carried on every [`SimResult`] this core produces).
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_ref()
    }

    /// Records a broken pipeline invariant — a simulator bug, not a program
    /// property. The first report wins; the pipeline freezes (every
    /// subsequent [`step_cycle`](Self::step_cycle) is a no-op) so the
    /// violation is surfaced through [`SimResult::invariant`] instead of a
    /// library panic or ever-worsening garbage counters.
    fn invariant(&mut self, stage: &'static str, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(InvariantViolation { stage, detail, cycle: self.cycle });
        }
    }

    /// Runs until `max_insts` instructions retire, the program finishes, or
    /// a pipeline invariant is violated (see [`SimResult::invariant`]).
    /// Returns the accumulated results (callable again to continue).
    pub fn run(&mut self, max_insts: u64) -> SimResult {
        let Some(mut mem) = self.mem.take() else {
            self.invariant(
                "run",
                "detached core has no owned hierarchy; drive it via run_on".to_string(),
            );
            return self.result();
        };
        let r = self.run_on(&mut mem, max_insts);
        self.mem = Some(mem);
        r
    }

    /// [`run`](Self::run) over an external (shared) memory hierarchy. The
    /// owned-hierarchy path delegates here, so a detached core driven over
    /// an equivalently-configured hierarchy behaves bit-identically.
    pub fn run_on(&mut self, mem: &mut MemoryHierarchy, max_insts: u64) -> SimResult {
        while self.active(max_insts) {
            self.step_cycle_on(mem);
            self.check_progress();
            if self.skip_enabled && self.violation.is_none() {
                self.skip_quiescent_on(mem, max_insts);
                self.check_progress();
            }
        }
        self.result_on(mem)
    }

    /// True while [`run`](Self::run) with this bound would keep stepping:
    /// the retirement target is unmet, the program has not finished, and no
    /// invariant violation has frozen the pipeline.
    pub fn active(&self, max_insts: u64) -> bool {
        self.retired < max_insts && !self.finished() && self.violation.is_none()
    }

    /// The deadlock invariant: fires (with the same cycle stamp whether the
    /// clock ticked or jumped there) when nothing has retired for
    /// [`DEADLOCK_LIMIT`] cycles.
    pub(crate) fn check_progress(&mut self) {
        if self.cycle.saturating_sub(self.last_retire_cycle) >= DEADLOCK_LIMIT {
            self.invariant(
                "progress",
                format!(
                    "no retirement for {DEADLOCK_LIMIT} cycles (retired {}); pipeline wedged",
                    self.retired
                ),
            );
        }
    }

    /// Enables or disables quiescence skipping for this core. Used by the
    /// skip differential (and anyone comparing against the per-cycle path)
    /// — tests switch this programmatically instead of mutating
    /// `SWQUE_NO_SKIP`, which would race other threads in-process.
    pub fn set_skip(&mut self, on: bool) {
        self.skip_enabled = on;
    }

    /// Whether quiescence skipping is currently armed.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// `(jumps_taken, cycles_skipped)` so far — host-side observability for
    /// the skip machinery. Deliberately *not* part of [`SimResult`]: results
    /// must be byte-identical with skipping on or off.
    pub fn skip_stats(&self) -> (u64, u64) {
        (self.skips_taken, self.cycles_skipped)
    }

    /// Snapshot of the statistics so far. On a detached core (no owned
    /// hierarchy) the memory counters are zero — use
    /// [`result_on`](Self::result_on) with the shared hierarchy instead.
    pub fn result(&self) -> SimResult {
        self.result_with(match &self.mem {
            Some(mem) => mem.stats_of(self.requester),
            None => MemStats::default(),
        })
    }

    /// Snapshot of the statistics so far, reading memory counters
    /// attributed to this core's requester id from `mem`.
    pub fn result_on(&self, mem: &MemoryHierarchy) -> SimResult {
        self.result_with(mem.stats_of(self.requester))
    }

    fn result_with(&self, mem: MemStats) -> SimResult {
        SimResult {
            cycles: self.cycle,
            retired: self.retired,
            iq: self.iq.stats(),
            swque: self.iq.swque_stats(),
            mem,
            branch: self.bp.stats(),
            core: self.stats,
            invariant: self.violation.clone(),
        }
    }

    /// Current IQ mode (meaningful for SWQUE).
    pub fn iq_mode(&self) -> IqMode {
        self.iq.mode()
    }

    /// A point-in-time view of pipeline occupancy, for instrumentation and
    /// debugging (the `mode_switching` example uses it to narrate runs).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: self.cycle,
            retired: self.retired,
            rob_occupancy: self.rob.len(),
            iq_occupancy: self.iq.len(),
            lsq_occupancy: self.lsq.len(),
            decode_occupancy: self.decode_q.len(),
            replay_pending: self.replay.len(),
            wrong_path_active: self.wrong_path.is_some(),
            mode: self.iq.mode(),
        }
    }

    /// Advances one cycle. A no-op once a pipeline invariant has been
    /// violated (the frozen state is exactly what the violation report
    /// describes).
    pub fn step_cycle(&mut self) {
        let Some(mut mem) = self.mem.take() else {
            self.invariant(
                "step",
                "detached core has no owned hierarchy; drive it via step_cycle_on".to_string(),
            );
            return;
        };
        self.step_cycle_on(&mut mem);
        self.mem = Some(mem);
    }

    /// [`step_cycle`](Self::step_cycle) over an external (shared) memory
    /// hierarchy; all memory accesses are tagged with this core's
    /// requester id.
    pub fn step_cycle_on(&mut self, mem: &mut MemoryHierarchy) {
        if self.violation.is_some() {
            return;
        }
        self.commit(mem);
        if self.trace.enabled() {
            self.trace_interval_ipc();
        }
        self.writeback();
        self.execute(mem);
        self.issue();
        self.dispatch();
        self.fetch(mem);
        self.poll_mode_switch(mem);
        self.cycle += 1;
    }

    // ---- quiescence skipping (DESIGN.md §10) ----

    /// The quiescence predicate: decides whether the *next*
    /// [`step_cycle`](Self::step_cycle) could change any architectural or
    /// queue state, and if not, how far the clock may jump.
    ///
    /// Returns `None` when some stage could act this cycle (the core must
    /// tick normally), or `Some(h)` with `h > self.cycle()` when every
    /// stage is provably idle until at least `h`: `h` is the minimum of the
    /// timed wake-ups (completion events, fetch stall expiry, front-end
    /// `ready_at`, pending-load AGU times, and every subsystem's
    /// [`WakeHorizon`]) capped at the deadlock limit, so a fully wedged
    /// pipeline jumps straight to the cycle at which the progress invariant
    /// fires — with the identical cycle stamp the per-cycle path produces.
    ///
    /// Pure: a query over `&self`, usable by tests to cross-check any
    /// claimed horizon against a per-cycle reference run. On a detached
    /// core this returns `None` ("must tick") — use
    /// [`quiescent_horizon_on`](Self::quiescent_horizon_on).
    pub fn quiescent_horizon(&self) -> Option<u64> {
        self.mem.as_ref().and_then(|mem| self.quiescent_horizon_on(mem))
    }

    /// [`quiescent_horizon`](Self::quiescent_horizon) over an external
    /// (shared) memory hierarchy: the hierarchy's wake horizon covers every
    /// requester's in-flight traffic, so on a shared hierarchy a core is
    /// only quiescent when no *neighbor* fill could change shared state it
    /// might observe either.
    // swque-domain: return: CycleStamp
    pub fn quiescent_horizon_on(&self, mem: &MemoryHierarchy) -> Option<u64> {
        if self.finished() {
            return None; // run loop exits; jumping would inflate `cycles`
        }
        let mut horizon: Option<u64> = None;

        // Commit: a Done ROB head retires this cycle.
        if matches!(self.rob.head(), Some(h) if h.state == RobState::Done) {
            return None;
        }
        // IPC interval trace: would emit if retired crossed the mark.
        // (Unreachable while retired is frozen — the mark is re-armed past
        // `retired` by the first traced step — but stated defensively.)
        if self.trace.enabled() && self.retired >= self.next_ipc_mark {
            return None;
        }
        // Writeback: the earliest completion event is either due or a
        // horizon.
        if let Some(&Reverse((t, _, _))) = self.events.peek() {
            if t <= self.cycle {
                return None;
            }
            horizon = min_horizon(horizon, Some(t));
        }
        // Issue: a ready IQ entry could be granted (or, for CIRC-PC, at
        // least advance the S_RV/PTL machinery) — tick normally.
        if self.iq.has_ready() {
            return None;
        }
        // Execute: every pending load is either timed (horizon) or blocked
        // in the LSQ (quiet until a store executes, which needs an issue).
        for &(ready, uid) in &self.pending_loads {
            if ready > self.cycle {
                horizon = min_horizon(horizon, Some(ready));
            } else if !matches!(self.lsq.load_action(uid), LoadAction::Wait) {
                return None;
            }
        }
        // Dispatch: the front instruction is timed, gated, or would go.
        if let Some(front) = self.decode_q.front() {
            if front.ready_at > self.cycle {
                horizon = min_horizon(horizon, Some(front.ready_at));
            } else {
                let inst = front.front.oracle.inst;
                let op = inst.op;
                let needs_iq = op != Opcode::Nop;
                let blocked = !self.rob.has_space()
                    || (needs_iq && !self.iq.has_space())
                    || (op.is_mem() && !self.lsq.has_space())
                    || inst
                        .dest()
                        .is_some_and(|r| self.rename.free_count(r.class) == 0);
                if !blocked {
                    return None;
                }
            }
        }
        // Fetch: stalled (horizon — capped here even when the wrong path is
        // dead, so a skip window never straddles the stall expiry and the
        // per-cycle mispredict-stall accounting stays exact), idle on a
        // dead wrong path, or it would fetch.
        if self.cycle < self.fetch_stalled_until {
            horizon = min_horizon(horizon, Some(self.fetch_stalled_until));
        } else if !matches!(&self.wrong_path, Some(wp) if wp.dead) {
            let has_source = self.wrong_path.is_some()
                || !self.replay.is_empty()
                || !self.emu_halted;
            if has_source && self.decode_q.len() < self.decode_capacity() {
                return None;
            }
        }
        // Subsystem wake horizons (the WakeHorizon contract).
        horizon = min_horizon(horizon, self.fus.wake_horizon(self.cycle));
        horizon = min_horizon(horizon, mem.wake_horizon(self.cycle));
        horizon = min_horizon(horizon, self.iq.wake_horizon(self.cycle));

        // Nothing will ever wake a fully quiet pipeline: jump to the cycle
        // at which the progress invariant declares it wedged.
        let cap = self.last_retire_cycle + DEADLOCK_LIMIT;
        Some(horizon.unwrap_or(cap).min(cap))
    }

    /// Mirrors the gating of the *first* instruction in
    /// [`dispatch`](Self::dispatch): true iff dispatch would charge an
    /// `iq_stall_cycles` tick this cycle. Only meaningful under the
    /// quiescence predicate (which guarantees the instruction cannot
    /// actually dispatch).
    fn dispatch_iq_blocked(&self) -> bool {
        let Some(front) = self.decode_q.front() else { return false };
        if front.ready_at > self.cycle {
            return false;
        }
        let op = front.front.oracle.inst.op;
        if !self.rob.has_space() {
            return false;
        }
        op != Opcode::Nop && !self.iq.has_space()
    }

    /// Attempts one clock jump: no-op unless the pipeline is quiescent.
    /// The `retired`/`finished` guards keep the jump from covering cycles
    /// the per-cycle loop would never have simulated (it exits as soon as
    /// its bounds are met).
    fn skip_quiescent_on(&mut self, mem: &MemoryHierarchy, max_insts: u64) {
        if self.retired >= max_insts || self.finished() {
            return;
        }
        let Some(h) = self.quiescent_horizon_on(mem) else { return };
        let n = h.saturating_sub(self.cycle);
        if n == 0 {
            return;
        }
        self.apply_skip(n);
    }

    /// Takes a clock jump of `n` cycles whose quiescence the caller has
    /// already established (its own horizon query, or — in a lockstep
    /// multi-core drive — the minimum across all cores' horizons).
    pub(crate) fn apply_skip(&mut self, n: u64) {
        self.advance_quiescent(n);
        self.skips_taken += 1;
        self.cycles_skipped += n;
    }

    /// Replays `n` provably idle cycles in bulk: exactly the bookkeeping
    /// `n` calls to [`step_cycle`](Self::step_cycle) would have done under
    /// the quiescence predicate, with every stage's state unchanged.
    fn advance_quiescent(&mut self, n: u64) {
        // Dispatch accounting: the gate outcome is stable for the whole
        // window (nothing dispatches, wakes, or frees during it).
        let iq_blocked = self.dispatch_iq_blocked();
        if iq_blocked {
            self.stats.iq_stall_cycles += n;
        }
        if self.trace.enabled() {
            // The stall-run tracker transitions only on a change of
            // `blocked`, so one call with the window's stable value is
            // equivalent to n per-cycle calls (episode start/end cycles
            // land identically).
            self.trace_dispatch_stall(iq_blocked);
        }
        // Fetch accounting: past the stall window (the predicate caps
        // skips at `fetch_stalled_until`, so `cycle >= fetch_stalled_until`
        // here means every skipped cycle is too), a dead wrong path charges
        // one mispredict-stall cycle per cycle.
        if self.cycle >= self.fetch_stalled_until
            && matches!(&self.wrong_path, Some(wp) if wp.dead)
        {
            self.stats.mispredict_stall_cycles += n;
        }
        // Queue per-cycle bookkeeping (occupancy averages, SWQUE mode
        // residency, REARRANGE promotions).
        self.iq.idle_tick(n);
        self.cycle += n;
    }

    // ---- commit ----

    fn commit(&mut self, mem: &mut MemoryHierarchy) {
        for _ in 0..self.config.width {
            match self.rob.head() {
                Some(h) if h.state == RobState::Done => {}
                _ => break,
            }
            let e = self.rob.pop_head();
            debug_assert!(!e.wp, "wrong-path instruction reached commit");
            if let Some((reg, new, old)) = e.dst {
                self.rename.commit_dst(reg, new, old);
            }
            if let Some(m) = e.oracle.mem {
                if m.is_store {
                    // Stores drain from the store buffer at commit; the
                    // access warms the cache and consumes bandwidth but
                    // never blocks retirement.
                    let _ = mem.access_from(self.requester, m.addr, AccessKind::Store, self.cycle);
                }
                self.lsq.remove(e.uid);
            }
            self.retired += 1;
            self.last_retire_cycle = self.cycle;
        }
    }

    // ---- writeback ----

    fn writeback(&mut self) {
        while let Some(&Reverse((t, _, _))) = self.events.peek() {
            if t > self.cycle {
                break;
            }
            let Some(Reverse((_, _, uid))) = self.events.pop() else { break };
            // Squashed instructions may leave stale completion events.
            let Some(entry) = self.rob.get_mut(uid) else { continue };
            entry.state = RobState::Done;
            let dst = entry.dst;
            let seq = entry.seq;
            let mispredicted = entry.mispredicted;
            if let Some((_, new, _)) = dst {
                self.rename.set_ready(new);
                self.iq.wakeup(new);
            }
            if mispredicted {
                // The branch resolved: squash its wrong path and redirect
                // fetch to the correct path (the refetched instructions pay
                // the front-end depth before dispatching).
                debug_assert!(
                    self.wrong_path.as_ref().is_none_or(|wp| wp.branch_uid == uid),
                    "resolving a branch that is not the active misprediction"
                );
                self.squash_younger(seq);
                self.wrong_path = None;
                self.fetch_stalled_until = self.fetch_stalled_until.max(self.cycle + 1);
                self.last_fetch_line = None;
            }
        }
    }

    /// Misprediction recovery: removes every instruction younger than
    /// `seq` from the whole pipeline, unwinding renames in reverse order.
    fn squash_younger(&mut self, seq: u64) {
        let squashed = self.rob.squash_younger(seq);
        for e in &squashed {
            // Youngest-first: rename map unwinds correctly.
            if let Some((reg, new, old)) = e.dst {
                self.rename.undo_dst(reg, new, old);
            }
            if e.oracle.mem.is_some() {
                self.lsq.remove(e.uid);
            }
        }
        self.stats.wrong_path_squashed += squashed.len() as u64;
        // Anything younger still in the front end is wrong-path too.
        self.decode_q.retain(|d| !d.wp);
        self.iq.squash_younger(seq);
        self.pending_loads.retain(|&(_, uid)| self.rob.get(uid).is_some());
    }

    // ---- execute (memory scheduling) ----

    fn execute(&mut self, mem: &mut MemoryHierarchy) {
        let mut still = Vec::new();
        let pending = std::mem::take(&mut self.pending_loads);
        for (ready, uid) in pending {
            if ready > self.cycle {
                still.push((ready, uid));
                continue;
            }
            match self.lsq.load_action(uid) {
                LoadAction::Wait => still.push((ready, uid)),
                LoadAction::Forward => {
                    self.lsq.mark_load_started(uid);
                    self.stats.loads_forwarded += 1;
                    let done = self.cycle + self.config.mem.l1d.hit_latency;
                    self.schedule(uid, done.max(self.cycle + 1));
                }
                LoadAction::Access => {
                    self.lsq.mark_load_started(uid);
                    self.stats.loads_accessed += 1;
                    let Some(m) = self.rob.get(uid).and_then(|e| e.oracle.mem) else {
                        self.invariant(
                            "execute",
                            format!("pending load uid {uid} has no live ROB memory record"),
                        );
                        return;
                    };
                    let r = mem.access_from(self.requester, m.addr, AccessKind::Load, self.cycle);
                    self.schedule(uid, r.done_at.max(self.cycle + 1));
                }
            }
        }
        self.pending_loads = still;
    }

    fn schedule(&mut self, uid: u64, at: u64) {
        let Some(entry) = self.rob.get(uid) else {
            self.invariant("schedule", format!("uid {uid} scheduled without a live ROB entry"));
            return;
        };
        self.events.push(Reverse((at, entry.seq, uid)));
    }

    // ---- issue ----

    fn issue(&mut self) {
        let mut budget =
            IssueBudget::new(self.config.width, self.fus.free_counts(self.cycle));
        let grants = self.iq.select(&mut budget);
        for g in grants {
            let uid = g.payload;
            let Some(entry) = self.rob.get_mut(uid) else {
                self.invariant("issue", format!("granted uid {uid} is not live in the ROB"));
                return;
            };
            entry.state = RobState::Executing;
            let op = entry.oracle.inst.op;
            self.fus.acquire(op, self.cycle);
            if op.is_load() {
                // Address generation completes next cycle; the memory access
                // is scheduled by `execute` once the LSQ permits it.
                self.pending_loads.push((self.cycle + 1, uid));
            } else if op.is_store() {
                // AGU computes the address; the LSQ learns it and younger
                // loads may now disambiguate. The store is then complete
                // from the ROB's point of view (data waits in the store
                // buffer until commit).
                self.lsq.mark_store_executed(uid);
                self.schedule(uid, self.cycle + 1);
            } else {
                self.schedule(uid, self.cycle + op.latency() as u64);
            }
        }
    }

    // ---- dispatch (rename + allocate) ----

    fn dispatch(&mut self) {
        let mut iq_blocked = false;
        for _ in 0..self.config.width {
            let Some(front) = self.decode_q.front() else { break };
            if front.ready_at > self.cycle {
                break;
            }
            let d = *front;
            let inst = d.front.oracle.inst;
            let op = inst.op;
            let needs_iq = op != Opcode::Nop;
            if !self.rob.has_space() {
                break;
            }
            if needs_iq && !self.iq.has_space() {
                iq_blocked = true;
                break;
            }
            if op.is_mem() && !self.lsq.has_space() {
                break;
            }
            if let Some(dst) = inst.dest() {
                if self.rename.free_count(dst.class) == 0 {
                    break;
                }
            }

            // All resources available: consume the instruction.
            self.decode_q.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;

            let srcs = [
                inst.src1.and_then(|r| self.rename.rename_src(r)),
                inst.src2.and_then(|r| self.rename.rename_src(r)),
            ];
            let dst = match inst.dest() {
                Some(r) => match self.rename.rename_dst(r) {
                    Some((new, old)) => Some((r, new, old)),
                    None => {
                        self.invariant(
                            "dispatch",
                            format!("no free physical register for seq {seq} after free_count check"),
                        );
                        return;
                    }
                },
                None => None,
            };
            if let Some(mem) = d.front.oracle.mem {
                self.lsq.push(d.front.uid, mem.is_store, mem.addr, mem.size);
            }
            self.rob.push(RobEntry {
                uid: d.front.uid,
                seq,
                oracle: d.front.oracle,
                state: if needs_iq { RobState::Waiting } else { RobState::Done },
                dst,
                mispredicted: d.mispredicted,
                wp: d.wp,
            });
            if needs_iq
                && self
                    .iq
                    .dispatch(DispatchReq {
                        seq,
                        payload: d.front.uid,
                        dst: dst.map(|(_, new, _)| new),
                        srcs,
                        fu: op.fu_class(),
                    })
                    .is_err()
            {
                self.invariant(
                    "dispatch",
                    format!("IQ rejected seq {seq} after has_space reported room"),
                );
                return;
            }
            self.stats.dispatched += 1;
        }
        if iq_blocked {
            self.stats.iq_stall_cycles += 1;
        }
        if self.trace.enabled() {
            self.trace_dispatch_stall(iq_blocked);
        }
    }

    // ---- fetch ----

    /// Maximum instructions buffered in the front end.
    fn decode_capacity(&self) -> usize {
        self.config.width * self.config.frontend_depth as usize
    }

    fn fetch(&mut self, mem: &mut MemoryHierarchy) {
        if self.cycle < self.fetch_stalled_until {
            return;
        }
        if matches!(&self.wrong_path, Some(wp) if wp.dead) {
            // The wrong path ran out; nothing to fetch until resolution.
            self.stats.mispredict_stall_cycles += 1;
            return;
        }
        let mut fetched = 0;
        while fetched < self.config.width && self.decode_q.len() < self.decode_capacity() {
            // Where is the next instruction coming from?
            enum Source {
                WrongPath,
                Replay,
                Oracle,
            }
            let (pc, source) = if let Some(wp) = &self.wrong_path {
                if wp.dead {
                    break;
                }
                (wp.shadow.pc(), Source::WrongPath)
            } else if let Some(f) = self.replay.front() {
                (f.oracle.pc, Source::Replay)
            } else if !self.emu_halted {
                (self.emu.pc(), Source::Oracle)
            } else {
                break;
            };

            // Instruction-cache access, once per line.
            let byte_addr = Program::byte_addr(pc);
            let line = byte_addr / self.config.mem.l1i.line_bytes as u64;
            if Some(line) != self.last_fetch_line {
                let r = mem.access_from(self.requester, byte_addr, AccessKind::IFetch, self.cycle);
                self.last_fetch_line = Some(line);
                if !r.l1_hit {
                    self.fetch_stalled_until = r.done_at;
                    self.stats.icache_stall_cycles += r.done_at - self.cycle;
                    break;
                }
            }

            // Obtain the instruction.
            let is_wp = matches!(source, Source::WrongPath);
            let front = match source {
                Source::WrongPath => {
                    let Some(wp) = self.wrong_path.as_mut() else {
                        self.invariant(
                            "fetch",
                            "wrong-path fetch source without active wrong-path state".to_string(),
                        );
                        return;
                    };
                    match wp.shadow.step(&self.emu) {
                        Ok(r) if r.inst.op == Opcode::Halt => {
                            wp.dead = true;
                            break;
                        }
                        Ok(r) => {
                            let uid = self.next_uid;
                            self.next_uid += 1;
                            self.stats.wrong_path_fetched += 1;
                            FrontInst { uid, oracle: r }
                        }
                        Err(_) => {
                            // Wrong path ran off the instruction text.
                            wp.dead = true;
                            break;
                        }
                    }
                }
                Source::Replay => {
                    let Some(f) = self.replay.pop_front() else {
                        self.invariant(
                            "fetch",
                            "replay fetch source with an empty replay queue".to_string(),
                        );
                        return;
                    };
                    self.stats.replayed += 1;
                    f
                }
                Source::Oracle => {
                    let retired = match self.emu.step() {
                        Ok(r) => r,
                        Err(e) => {
                            self.invariant("fetch", format!("oracle emulator fault: {e}"));
                            return;
                        }
                    };
                    if retired.inst.op == Opcode::Halt {
                        self.emu_halted = true;
                        break;
                    }
                    let uid = self.next_uid;
                    self.next_uid += 1;
                    FrontInst { uid, oracle: retired }
                }
            };

            // Branch prediction (correct path only; wrong-path control flow
            // follows the shadow emulator's outcomes).
            let mut mispredicted = false;
            let mut end_group = false;
            let op = front.oracle.inst.op;
            let mut prediction = None;
            if op.is_control() {
                if is_wp {
                    if front.oracle.taken() {
                        end_group = true;
                        self.last_fetch_line = None;
                    }
                } else {
                    let kind = match op {
                        Opcode::Jr => BranchKind::IndirectJump,
                        Opcode::J | Opcode::Jal => BranchKind::DirectJump,
                        _ => BranchKind::Conditional,
                    };
                    let pred = self.bp.predict(byte_addr, kind);
                    let outcome = BranchOutcome {
                        taken: front.oracle.taken(),
                        target: Program::byte_addr(front.oracle.next_pc),
                    };
                    mispredicted = self.bp.update(byte_addr, kind, pred, outcome);
                    prediction = Some(pred);
                    if front.oracle.taken() {
                        end_group = true;
                        self.last_fetch_line = None;
                    }
                }
            }

            self.decode_q.push_back(DecodedInst {
                front,
                ready_at: self.cycle + self.config.frontend_depth,
                mispredicted,
                wp: is_wp,
            });
            fetched += 1;

            if mispredicted {
                // Start fetching the predicted (wrong) path; it is squashed
                // when this branch resolves.
                let wrong_pc = match op {
                    // Conditional: the not-taken/taken alternative.
                    Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                        if front.oracle.taken() {
                            Some(pc + 1)
                        } else {
                            Some(front.oracle.inst.imm as u64)
                        }
                    }
                    // Indirect: whatever stale target the BTB supplied, if
                    // any; a cold BTB gives the front end nowhere to go.
                    Opcode::Jr => prediction
                        .and_then(|p| p.target)
                        .map(|t| t >> 2)
                        .filter(|&t| t != front.oracle.next_pc),
                    _ => None,
                };
                self.wrong_path = Some(match wrong_pc {
                    Some(wpc) => WrongPath {
                        branch_uid: front.uid,
                        shadow: self.emu.shadow(wpc),
                        dead: false,
                    },
                    None => WrongPath {
                        branch_uid: front.uid,
                        shadow: self.emu.shadow(0),
                        dead: true,
                    },
                });
                self.last_fetch_line = None;
                break;
            }
            if end_group {
                break;
            }
        }
    }

    // ---- SWQUE mode switching ----

    fn poll_mode_switch(&mut self, mem: &MemoryHierarchy) {
        let before = self.iq.mode();
        let misses = mem.llc_demand_misses_of(self.requester);
        let switched = self.iq.poll_mode_switch(self.cycle, self.retired, misses);
        let penalty = self.config.iq.swque.switch_penalty;
        if let Some(response) = switching::mode_switch_response(self.cycle, penalty, switched) {
            self.full_flush();
            self.fetch_stalled_until = response.fetch_stalled_until;
            self.stats.mode_switch_flushes += 1;
            if self.trace.enabled() {
                if let (Some(from), Some(to)) = (before.trace(), self.iq.mode().trace()) {
                    self.trace.record(TraceEvent::ModeSwitch {
                        cycle: self.cycle,
                        retired: self.retired,
                        from,
                        to,
                    });
                }
            }
        }
    }

    /// Emits an [`TraceEvent::IntervalIpc`] sample each time `retired`
    /// crosses an interval boundary (the controller's `interval_insts`, so
    /// the IPC series lines up with the controller's interval series).
    fn trace_interval_ipc(&mut self) {
        if self.retired < self.next_ipc_mark {
            return;
        }
        let (start_cycle, start_retired) = self.ipc_window_start;
        let cycles = self.cycle.saturating_sub(start_cycle).max(1);
        let insts = self.retired.saturating_sub(start_retired);
        self.trace.record(TraceEvent::IntervalIpc {
            cycle: self.cycle,
            retired: self.retired,
            ipc: insts as f64 / cycles as f64,
        });
        self.ipc_window_start = (self.cycle, self.retired);
        let interval = self.config.iq.swque.interval_insts.max(1);
        self.next_ipc_mark = self.retired + interval;
    }

    /// Tracks runs of IQ-blocked dispatch cycles, emitting a
    /// [`TraceEvent::DispatchStall`] episode when a run of at least
    /// [`STALL_EPISODE_MIN`] cycles ends.
    fn trace_dispatch_stall(&mut self, blocked: bool) {
        match (blocked, self.stall_run_start) {
            (true, None) => self.stall_run_start = Some(self.cycle),
            (false, Some(start)) => {
                let run = self.cycle.saturating_sub(start);
                if run >= STALL_EPISODE_MIN {
                    self.trace.record(TraceEvent::DispatchStall { cycle: start, cycles: run });
                }
                self.stall_run_start = None;
            }
            _ => {}
        }
    }

    /// Squashes every in-flight instruction and queues them (in program
    /// order) for replay through the front end.
    fn full_flush(&mut self) {
        // Wrong-path instructions are dropped outright (they are refetched
        // never; the mispredicted branch itself is correct-path and will be
        // re-predicted on replay). Everything else replays in order.
        let mut replay: VecDeque<FrontInst> = self
            .rob
            .drain_in_order()
            .into_iter()
            .filter(|e| !e.wp)
            .map(|e| FrontInst { uid: e.uid, oracle: e.oracle })
            .collect();
        replay.extend(self.decode_q.drain(..).filter(|d| !d.wp).map(|d| d.front));
        replay.append(&mut self.replay);
        self.replay = replay;

        self.events.clear();
        self.pending_loads.clear();
        self.iq.flush();
        self.lsq.clear();
        self.fus.reset();
        self.rename.recover();
        self.wrong_path = None;
        self.last_fetch_line = None;
    }
}
