//! The out-of-order superscalar core: a cycle-level timing model in the
//! style of SimpleScalar's `sim-outorder`, with the issue queue fully
//! pluggable via [`IqKind`].
//!
//! # Structure
//!
//! Each simulated cycle runs the pipeline stages in reverse order so that
//! same-cycle producer→consumer flow behaves like hardware:
//!
//! `commit → writeback → execute → issue → dispatch → fetch`
//!
//! * **Fetch** uses the functional [`Emulator`] as an execute-at-fetch
//!   oracle: each fetched instruction carries its architectural outcome
//!   (next pc, memory address). Branches are predicted with gshare+BTB; on a
//!   misprediction fetch *stalls* until the branch resolves (no wrong-path
//!   execution, SimpleScalar's default) and then pays the front-end refill
//!   implied by `frontend_depth`.
//! * **Dispatch** renames registers, allocates ROB/LSQ/IQ entries in program
//!   order, and stalls on any structural hazard — including the circular
//!   queues' hole-induced capacity loss, which is how CIRC's inefficiency
//!   becomes visible in IPC.
//! * **Issue** builds an [`IssueBudget`] from the free function units and
//!   asks the issue queue to select; the queue's priority policy is the
//!   paper's entire subject.
//! * **Writeback** broadcasts destination tags into the IQ one cycle before
//!   dependents can issue, giving back-to-back scheduling for single-cycle
//!   producers.
//! * **Mode switches** (SWQUE) perform a *full* pipeline flush: in-flight
//!   instructions are replayed through the front end (they are correct-path
//!   by construction), and fetch stalls for the switch penalty.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use swque_branch::{BranchKind, BranchOutcome, BranchPredictor};
use swque_core::{DispatchReq, IqKind, IqMode, IssueBudget, IssueQueue};
use swque_isa::{Emulator, Opcode, Program, Retired, ShadowEmulator};
use swque_mem::{AccessKind, MemoryHierarchy};
use swque_trace::{TraceEvent, TraceHandle};

use crate::config::CoreConfig;
use crate::fu::FuPool;
use crate::lsq::{LoadAction, Lsq};
use crate::rename::RenameState;
use crate::result::{CoreStats, InvariantViolation, SimResult};
use crate::rob::{Rob, RobEntry, RobState};

/// An instruction travelling through the front end (fetched or awaiting
/// replay after a flush).
#[derive(Debug, Clone, Copy)]
struct FrontInst {
    uid: u64,
    oracle: Retired,
}

/// A fetched instruction waiting out the front-end pipeline depth.
#[derive(Debug, Clone, Copy)]
struct DecodedInst {
    front: FrontInst,
    ready_at: u64,
    mispredicted: bool,
    /// Fetched down a mispredicted branch's wrong path.
    wp: bool,
}

/// Active wrong-path fetch state: created when the front end detects a
/// misprediction (oracle outcome vs prediction) and destroyed when the
/// branch resolves and its wrong path is squashed.
#[derive(Debug)]
struct WrongPath {
    /// uid of the mispredicted (correct-path) branch.
    branch_uid: u64,
    /// Shadow execution context running down the predicted (wrong) path.
    shadow: ShadowEmulator,
    /// The wrong path ran out (halt/invalid pc/unknown target); fetch idles
    /// until the branch resolves.
    dead: bool,
}

/// Cycles with no retirement before the simulator declares itself wedged.
const DEADLOCK_LIMIT: u64 = 2_000_000;

/// Shortest dispatch-stall run (consecutive IQ-blocked cycles) that emits a
/// [`TraceEvent::DispatchStall`] episode. Shorter runs stay visible in the
/// aggregate `iq_stall_cycles` counter; emitting each of them would flood a
/// bounded trace ring with one-cycle episodes in capacity-bound phases.
const STALL_EPISODE_MIN: u64 = 8;

/// A point-in-time view of pipeline occupancy (see [`Core::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Live reorder-buffer entries.
    pub rob_occupancy: usize,
    /// Live issue-queue entries.
    pub iq_occupancy: usize,
    /// Live load/store-queue entries.
    pub lsq_occupancy: usize,
    /// Instructions buffered in the front end.
    pub decode_occupancy: usize,
    /// Correct-path instructions awaiting replay after a flush.
    pub replay_pending: usize,
    /// A misprediction is unresolved (wrong-path fetch active or dead).
    pub wrong_path_active: bool,
    /// The issue queue's current operating mode.
    pub mode: IqMode,
}

/// The simulated core.
#[derive(Debug)]
pub struct Core {
    config: CoreConfig,
    iq: Box<dyn IssueQueue>,
    emu: Emulator,
    mem: MemoryHierarchy,
    bp: BranchPredictor,
    rename: RenameState,
    rob: Rob,
    lsq: Lsq,
    fus: FuPool,

    cycle: u64,
    retired: u64,
    last_retire_cycle: u64,
    next_uid: u64,
    next_seq: u64,

    /// Correct-path instructions squashed by a flush, awaiting refetch.
    replay: VecDeque<FrontInst>,
    /// Fetched instructions in the front-end pipeline.
    decode_q: VecDeque<DecodedInst>,
    fetch_stalled_until: u64,
    /// Wrong-path fetch state while a misprediction is unresolved.
    wrong_path: Option<WrongPath>,
    emu_halted: bool,
    last_fetch_line: Option<u64>,

    /// Completion events: `(cycle, seq, uid)` min-heap.
    events: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Loads whose address generation is done: `(ready_cycle, uid)`.
    pending_loads: Vec<(u64, u64)>,

    /// Observability sink (disabled by default; see [`Core::attach_trace`]).
    trace: TraceHandle,
    /// Retired count at which the next [`TraceEvent::IntervalIpc`] fires.
    next_ipc_mark: u64,
    /// `(cycle, retired)` at the previous IPC interval boundary.
    ipc_window_start: (u64, u64),
    /// Cycle the current dispatch-stall run began (`None` = not stalled).
    stall_run_start: Option<u64>,

    /// First pipeline-invariant violation (see [`Core::invariant`]); once
    /// set, the pipeline is frozen and the run loop stops.
    violation: Option<InvariantViolation>,

    stats: CoreStats,
}

impl Core {
    /// Creates a core running `program` with the issue queue `kind`.
    pub fn new(config: CoreConfig, kind: IqKind, program: &Program) -> Core {
        let iq = kind.build(&config.iq);
        let interval = config.iq.swque.interval_insts.max(1);
        Core {
            emu: Emulator::new(program),
            mem: MemoryHierarchy::new(config.mem),
            bp: BranchPredictor::new(config.predictor),
            rename: RenameState::new(config.phys_int, config.phys_fp),
            rob: Rob::new(config.rob_entries),
            lsq: Lsq::new(config.lsq_entries),
            fus: FuPool::new(config.fu_counts),
            iq,
            cycle: 0,
            retired: 0,
            last_retire_cycle: 0,
            next_uid: 0,
            next_seq: 0,
            replay: VecDeque::new(),
            decode_q: VecDeque::new(),
            fetch_stalled_until: 0,
            wrong_path: None,
            emu_halted: false,
            last_fetch_line: None,
            events: BinaryHeap::new(),
            pending_loads: Vec::new(),
            trace: TraceHandle::disabled(),
            next_ipc_mark: interval,
            ipc_window_start: (0, 0),
            stall_run_start: None,
            violation: None,
            stats: CoreStats::default(),
            config,
        }
    }

    /// Connects an observability sink: the core emits [`TraceEvent`]s into
    /// it ([`TraceEvent::IntervalIpc`], [`TraceEvent::ModeSwitch`],
    /// [`TraceEvent::DispatchStall`]) and propagates the handle to the
    /// issue queue (controller interval samples) and the memory hierarchy
    /// (epoch samples). With the default disabled handle every emission
    /// site is a single predictable branch.
    pub fn attach_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.clone();
        self.iq.attach_trace(trace);
        self.mem.set_trace(trace);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired instructions so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The functional emulator (architectural state oracle). After the run
    /// completes, this holds the program's final architectural state, which
    /// is identical across all issue-queue organizations — a key invariant.
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }

    /// True when the program has halted and the pipeline has drained.
    pub fn finished(&self) -> bool {
        self.emu_halted
            && self.rob.is_empty()
            && self.decode_q.is_empty()
            && self.replay.is_empty()
    }

    /// The first pipeline-invariant violation, if the simulator wedged
    /// itself (also carried on every [`SimResult`] this core produces).
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_ref()
    }

    /// Records a broken pipeline invariant — a simulator bug, not a program
    /// property. The first report wins; the pipeline freezes (every
    /// subsequent [`step_cycle`](Self::step_cycle) is a no-op) so the
    /// violation is surfaced through [`SimResult::invariant`] instead of a
    /// library panic or ever-worsening garbage counters.
    fn invariant(&mut self, stage: &'static str, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(InvariantViolation { stage, detail, cycle: self.cycle });
        }
    }

    /// Runs until `max_insts` instructions retire, the program finishes, or
    /// a pipeline invariant is violated (see [`SimResult::invariant`]).
    /// Returns the accumulated results (callable again to continue).
    pub fn run(&mut self, max_insts: u64) -> SimResult {
        while self.retired < max_insts && !self.finished() && self.violation.is_none() {
            self.step_cycle();
            if self.cycle.saturating_sub(self.last_retire_cycle) >= DEADLOCK_LIMIT {
                self.invariant(
                    "progress",
                    format!(
                        "no retirement for {DEADLOCK_LIMIT} cycles (retired {}); pipeline wedged",
                        self.retired
                    ),
                );
            }
        }
        self.result()
    }

    /// Snapshot of the statistics so far.
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.cycle,
            retired: self.retired,
            iq: self.iq.stats(),
            swque: self.iq.swque_stats(),
            mem: self.mem.stats(),
            branch: self.bp.stats(),
            core: self.stats,
            invariant: self.violation.clone(),
        }
    }

    /// Current IQ mode (meaningful for SWQUE).
    pub fn iq_mode(&self) -> IqMode {
        self.iq.mode()
    }

    /// A point-in-time view of pipeline occupancy, for instrumentation and
    /// debugging (the `mode_switching` example uses it to narrate runs).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            cycle: self.cycle,
            retired: self.retired,
            rob_occupancy: self.rob.len(),
            iq_occupancy: self.iq.len(),
            lsq_occupancy: self.lsq.len(),
            decode_occupancy: self.decode_q.len(),
            replay_pending: self.replay.len(),
            wrong_path_active: self.wrong_path.is_some(),
            mode: self.iq.mode(),
        }
    }

    /// Advances one cycle. A no-op once a pipeline invariant has been
    /// violated (the frozen state is exactly what the violation report
    /// describes).
    pub fn step_cycle(&mut self) {
        if self.violation.is_some() {
            return;
        }
        self.commit();
        if self.trace.enabled() {
            self.trace_interval_ipc();
        }
        self.writeback();
        self.execute();
        self.issue();
        self.dispatch();
        self.fetch();
        self.poll_mode_switch();
        self.cycle += 1;
    }

    // ---- commit ----

    fn commit(&mut self) {
        for _ in 0..self.config.width {
            match self.rob.head() {
                Some(h) if h.state == RobState::Done => {}
                _ => break,
            }
            let e = self.rob.pop_head();
            debug_assert!(!e.wp, "wrong-path instruction reached commit");
            if let Some((reg, new, old)) = e.dst {
                self.rename.commit_dst(reg, new, old);
            }
            if let Some(mem) = e.oracle.mem {
                if mem.is_store {
                    // Stores drain from the store buffer at commit; the
                    // access warms the cache and consumes bandwidth but
                    // never blocks retirement.
                    let _ = self.mem.access(mem.addr, AccessKind::Store, self.cycle);
                }
                self.lsq.remove(e.uid);
            }
            self.retired += 1;
            self.last_retire_cycle = self.cycle;
        }
    }

    // ---- writeback ----

    fn writeback(&mut self) {
        while let Some(&Reverse((t, _, _))) = self.events.peek() {
            if t > self.cycle {
                break;
            }
            let Some(Reverse((_, _, uid))) = self.events.pop() else { break };
            // Squashed instructions may leave stale completion events.
            let Some(entry) = self.rob.get_mut(uid) else { continue };
            entry.state = RobState::Done;
            let dst = entry.dst;
            let seq = entry.seq;
            let mispredicted = entry.mispredicted;
            if let Some((_, new, _)) = dst {
                self.rename.set_ready(new);
                self.iq.wakeup(new);
            }
            if mispredicted {
                // The branch resolved: squash its wrong path and redirect
                // fetch to the correct path (the refetched instructions pay
                // the front-end depth before dispatching).
                debug_assert!(
                    self.wrong_path.as_ref().is_none_or(|wp| wp.branch_uid == uid),
                    "resolving a branch that is not the active misprediction"
                );
                self.squash_younger(seq);
                self.wrong_path = None;
                self.fetch_stalled_until = self.fetch_stalled_until.max(self.cycle + 1);
                self.last_fetch_line = None;
            }
        }
    }

    /// Misprediction recovery: removes every instruction younger than
    /// `seq` from the whole pipeline, unwinding renames in reverse order.
    fn squash_younger(&mut self, seq: u64) {
        let squashed = self.rob.squash_younger(seq);
        for e in &squashed {
            // Youngest-first: rename map unwinds correctly.
            if let Some((reg, new, old)) = e.dst {
                self.rename.undo_dst(reg, new, old);
            }
            if e.oracle.mem.is_some() {
                self.lsq.remove(e.uid);
            }
        }
        self.stats.wrong_path_squashed += squashed.len() as u64;
        // Anything younger still in the front end is wrong-path too.
        self.decode_q.retain(|d| !d.wp);
        self.iq.squash_younger(seq);
        self.pending_loads.retain(|&(_, uid)| self.rob.get(uid).is_some());
    }

    // ---- execute (memory scheduling) ----

    fn execute(&mut self) {
        let mut still = Vec::new();
        let pending = std::mem::take(&mut self.pending_loads);
        for (ready, uid) in pending {
            if ready > self.cycle {
                still.push((ready, uid));
                continue;
            }
            match self.lsq.load_action(uid) {
                LoadAction::Wait => still.push((ready, uid)),
                LoadAction::Forward => {
                    self.lsq.mark_load_started(uid);
                    self.stats.loads_forwarded += 1;
                    let done = self.cycle + self.config.mem.l1d.hit_latency;
                    self.schedule(uid, done.max(self.cycle + 1));
                }
                LoadAction::Access => {
                    self.lsq.mark_load_started(uid);
                    self.stats.loads_accessed += 1;
                    let Some(mem) = self.rob.get(uid).and_then(|e| e.oracle.mem) else {
                        self.invariant(
                            "execute",
                            format!("pending load uid {uid} has no live ROB memory record"),
                        );
                        return;
                    };
                    let r = self.mem.access(mem.addr, AccessKind::Load, self.cycle);
                    self.schedule(uid, r.done_at.max(self.cycle + 1));
                }
            }
        }
        self.pending_loads = still;
    }

    fn schedule(&mut self, uid: u64, at: u64) {
        let Some(entry) = self.rob.get(uid) else {
            self.invariant("schedule", format!("uid {uid} scheduled without a live ROB entry"));
            return;
        };
        self.events.push(Reverse((at, entry.seq, uid)));
    }

    // ---- issue ----

    fn issue(&mut self) {
        let mut budget =
            IssueBudget::new(self.config.width, self.fus.free_counts(self.cycle));
        let grants = self.iq.select(&mut budget);
        for g in grants {
            let uid = g.payload;
            let Some(entry) = self.rob.get_mut(uid) else {
                self.invariant("issue", format!("granted uid {uid} is not live in the ROB"));
                return;
            };
            entry.state = RobState::Executing;
            let op = entry.oracle.inst.op;
            self.fus.acquire(op, self.cycle);
            if op.is_load() {
                // Address generation completes next cycle; the memory access
                // is scheduled by `execute` once the LSQ permits it.
                self.pending_loads.push((self.cycle + 1, uid));
            } else if op.is_store() {
                // AGU computes the address; the LSQ learns it and younger
                // loads may now disambiguate. The store is then complete
                // from the ROB's point of view (data waits in the store
                // buffer until commit).
                self.lsq.mark_store_executed(uid);
                self.schedule(uid, self.cycle + 1);
            } else {
                self.schedule(uid, self.cycle + op.latency() as u64);
            }
        }
    }

    // ---- dispatch (rename + allocate) ----

    fn dispatch(&mut self) {
        let mut iq_blocked = false;
        for _ in 0..self.config.width {
            let Some(front) = self.decode_q.front() else { break };
            if front.ready_at > self.cycle {
                break;
            }
            let d = *front;
            let inst = d.front.oracle.inst;
            let op = inst.op;
            let needs_iq = op != Opcode::Nop;
            if !self.rob.has_space() {
                break;
            }
            if needs_iq && !self.iq.has_space() {
                iq_blocked = true;
                break;
            }
            if op.is_mem() && !self.lsq.has_space() {
                break;
            }
            if let Some(dst) = inst.dest() {
                if self.rename.free_count(dst.class) == 0 {
                    break;
                }
            }

            // All resources available: consume the instruction.
            self.decode_q.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;

            let srcs = [
                inst.src1.and_then(|r| self.rename.rename_src(r)),
                inst.src2.and_then(|r| self.rename.rename_src(r)),
            ];
            let dst = match inst.dest() {
                Some(r) => match self.rename.rename_dst(r) {
                    Some((new, old)) => Some((r, new, old)),
                    None => {
                        self.invariant(
                            "dispatch",
                            format!("no free physical register for seq {seq} after free_count check"),
                        );
                        return;
                    }
                },
                None => None,
            };
            if let Some(mem) = d.front.oracle.mem {
                self.lsq.push(d.front.uid, mem.is_store, mem.addr, mem.size);
            }
            self.rob.push(RobEntry {
                uid: d.front.uid,
                seq,
                oracle: d.front.oracle,
                state: if needs_iq { RobState::Waiting } else { RobState::Done },
                dst,
                mispredicted: d.mispredicted,
                wp: d.wp,
            });
            if needs_iq
                && self
                    .iq
                    .dispatch(DispatchReq {
                        seq,
                        payload: d.front.uid,
                        dst: dst.map(|(_, new, _)| new),
                        srcs,
                        fu: op.fu_class(),
                    })
                    .is_err()
            {
                self.invariant(
                    "dispatch",
                    format!("IQ rejected seq {seq} after has_space reported room"),
                );
                return;
            }
            self.stats.dispatched += 1;
        }
        if iq_blocked {
            self.stats.iq_stall_cycles += 1;
        }
        if self.trace.enabled() {
            self.trace_dispatch_stall(iq_blocked);
        }
    }

    // ---- fetch ----

    /// Maximum instructions buffered in the front end.
    fn decode_capacity(&self) -> usize {
        self.config.width * self.config.frontend_depth as usize
    }

    fn fetch(&mut self) {
        if self.cycle < self.fetch_stalled_until {
            return;
        }
        if matches!(&self.wrong_path, Some(wp) if wp.dead) {
            // The wrong path ran out; nothing to fetch until resolution.
            self.stats.mispredict_stall_cycles += 1;
            return;
        }
        let mut fetched = 0;
        while fetched < self.config.width && self.decode_q.len() < self.decode_capacity() {
            // Where is the next instruction coming from?
            enum Source {
                WrongPath,
                Replay,
                Oracle,
            }
            let (pc, source) = if let Some(wp) = &self.wrong_path {
                if wp.dead {
                    break;
                }
                (wp.shadow.pc(), Source::WrongPath)
            } else if let Some(f) = self.replay.front() {
                (f.oracle.pc, Source::Replay)
            } else if !self.emu_halted {
                (self.emu.pc(), Source::Oracle)
            } else {
                break;
            };

            // Instruction-cache access, once per line.
            let byte_addr = Program::byte_addr(pc);
            let line = byte_addr / self.config.mem.l1i.line_bytes as u64;
            if Some(line) != self.last_fetch_line {
                let r = self.mem.access(byte_addr, AccessKind::IFetch, self.cycle);
                self.last_fetch_line = Some(line);
                if !r.l1_hit {
                    self.fetch_stalled_until = r.done_at;
                    self.stats.icache_stall_cycles += r.done_at - self.cycle;
                    break;
                }
            }

            // Obtain the instruction.
            let is_wp = matches!(source, Source::WrongPath);
            let front = match source {
                Source::WrongPath => {
                    let Some(wp) = self.wrong_path.as_mut() else {
                        self.invariant(
                            "fetch",
                            "wrong-path fetch source without active wrong-path state".to_string(),
                        );
                        return;
                    };
                    match wp.shadow.step(&self.emu) {
                        Ok(r) if r.inst.op == Opcode::Halt => {
                            wp.dead = true;
                            break;
                        }
                        Ok(r) => {
                            let uid = self.next_uid;
                            self.next_uid += 1;
                            self.stats.wrong_path_fetched += 1;
                            FrontInst { uid, oracle: r }
                        }
                        Err(_) => {
                            // Wrong path ran off the instruction text.
                            wp.dead = true;
                            break;
                        }
                    }
                }
                Source::Replay => {
                    let Some(f) = self.replay.pop_front() else {
                        self.invariant(
                            "fetch",
                            "replay fetch source with an empty replay queue".to_string(),
                        );
                        return;
                    };
                    self.stats.replayed += 1;
                    f
                }
                Source::Oracle => {
                    let retired = match self.emu.step() {
                        Ok(r) => r,
                        Err(e) => {
                            self.invariant("fetch", format!("oracle emulator fault: {e}"));
                            return;
                        }
                    };
                    if retired.inst.op == Opcode::Halt {
                        self.emu_halted = true;
                        break;
                    }
                    let uid = self.next_uid;
                    self.next_uid += 1;
                    FrontInst { uid, oracle: retired }
                }
            };

            // Branch prediction (correct path only; wrong-path control flow
            // follows the shadow emulator's outcomes).
            let mut mispredicted = false;
            let mut end_group = false;
            let op = front.oracle.inst.op;
            let mut prediction = None;
            if op.is_control() {
                if is_wp {
                    if front.oracle.taken() {
                        end_group = true;
                        self.last_fetch_line = None;
                    }
                } else {
                    let kind = match op {
                        Opcode::Jr => BranchKind::IndirectJump,
                        Opcode::J | Opcode::Jal => BranchKind::DirectJump,
                        _ => BranchKind::Conditional,
                    };
                    let pred = self.bp.predict(byte_addr, kind);
                    let outcome = BranchOutcome {
                        taken: front.oracle.taken(),
                        target: Program::byte_addr(front.oracle.next_pc),
                    };
                    mispredicted = self.bp.update(byte_addr, kind, pred, outcome);
                    prediction = Some(pred);
                    if front.oracle.taken() {
                        end_group = true;
                        self.last_fetch_line = None;
                    }
                }
            }

            self.decode_q.push_back(DecodedInst {
                front,
                ready_at: self.cycle + self.config.frontend_depth,
                mispredicted,
                wp: is_wp,
            });
            fetched += 1;

            if mispredicted {
                // Start fetching the predicted (wrong) path; it is squashed
                // when this branch resolves.
                let wrong_pc = match op {
                    // Conditional: the not-taken/taken alternative.
                    Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                        if front.oracle.taken() {
                            Some(pc + 1)
                        } else {
                            Some(front.oracle.inst.imm as u64)
                        }
                    }
                    // Indirect: whatever stale target the BTB supplied, if
                    // any; a cold BTB gives the front end nowhere to go.
                    Opcode::Jr => prediction
                        .and_then(|p| p.target)
                        .map(|t| t >> 2)
                        .filter(|&t| t != front.oracle.next_pc),
                    _ => None,
                };
                self.wrong_path = Some(match wrong_pc {
                    Some(wpc) => WrongPath {
                        branch_uid: front.uid,
                        shadow: self.emu.shadow(wpc),
                        dead: false,
                    },
                    None => WrongPath {
                        branch_uid: front.uid,
                        shadow: self.emu.shadow(0),
                        dead: true,
                    },
                });
                self.last_fetch_line = None;
                break;
            }
            if end_group {
                break;
            }
        }
    }

    // ---- SWQUE mode switching ----

    fn poll_mode_switch(&mut self) {
        let before = self.iq.mode();
        if self.iq.poll_mode_switch(self.cycle, self.retired, self.mem.llc_demand_misses()) {
            self.full_flush();
            self.fetch_stalled_until = self.cycle + self.config.iq.swque.switch_penalty;
            self.stats.mode_switch_flushes += 1;
            if self.trace.enabled() {
                if let (Some(from), Some(to)) = (before.trace(), self.iq.mode().trace()) {
                    self.trace.record(TraceEvent::ModeSwitch {
                        cycle: self.cycle,
                        retired: self.retired,
                        from,
                        to,
                    });
                }
            }
        }
    }

    /// Emits an [`TraceEvent::IntervalIpc`] sample each time `retired`
    /// crosses an interval boundary (the controller's `interval_insts`, so
    /// the IPC series lines up with the controller's interval series).
    fn trace_interval_ipc(&mut self) {
        if self.retired < self.next_ipc_mark {
            return;
        }
        let (start_cycle, start_retired) = self.ipc_window_start;
        let cycles = self.cycle.saturating_sub(start_cycle).max(1);
        let insts = self.retired.saturating_sub(start_retired);
        self.trace.record(TraceEvent::IntervalIpc {
            cycle: self.cycle,
            retired: self.retired,
            ipc: insts as f64 / cycles as f64,
        });
        self.ipc_window_start = (self.cycle, self.retired);
        let interval = self.config.iq.swque.interval_insts.max(1);
        self.next_ipc_mark = self.retired + interval;
    }

    /// Tracks runs of IQ-blocked dispatch cycles, emitting a
    /// [`TraceEvent::DispatchStall`] episode when a run of at least
    /// [`STALL_EPISODE_MIN`] cycles ends.
    fn trace_dispatch_stall(&mut self, blocked: bool) {
        match (blocked, self.stall_run_start) {
            (true, None) => self.stall_run_start = Some(self.cycle),
            (false, Some(start)) => {
                let run = self.cycle.saturating_sub(start);
                if run >= STALL_EPISODE_MIN {
                    self.trace.record(TraceEvent::DispatchStall { cycle: start, cycles: run });
                }
                self.stall_run_start = None;
            }
            _ => {}
        }
    }

    /// Squashes every in-flight instruction and queues them (in program
    /// order) for replay through the front end.
    fn full_flush(&mut self) {
        // Wrong-path instructions are dropped outright (they are refetched
        // never; the mispredicted branch itself is correct-path and will be
        // re-predicted on replay). Everything else replays in order.
        let mut replay: VecDeque<FrontInst> = self
            .rob
            .drain_in_order()
            .into_iter()
            .filter(|e| !e.wp)
            .map(|e| FrontInst { uid: e.uid, oracle: e.oracle })
            .collect();
        replay.extend(self.decode_q.drain(..).filter(|d| !d.wp).map(|d| d.front));
        replay.append(&mut self.replay);
        self.replay = replay;

        self.events.clear();
        self.pending_loads.clear();
        self.iq.flush();
        self.lsq.clear();
        self.fus.reset();
        self.rename.recover();
        self.wrong_path = None;
        self.last_fetch_line = None;
    }
}
