//! Register renaming: speculative and committed map tables, free lists, and
//! the physical-register ready scoreboard.
//!
//! Recovery model: the core only ever performs *full* pipeline flushes
//! (SWQUE mode switches; branch mispredictions stall fetch instead of
//! fetching the wrong path), so recovery simply restores the speculative map
//! from the committed map and rebuilds the free lists.

use std::collections::VecDeque;

use swque_isa::{ArchReg, RegClass, NUM_ARCH_REGS};

use swque_core::Tag;

/// Rename state for both register classes.
#[derive(Debug, Clone)]
pub struct RenameState {
    phys_int: usize,
    /// Speculative map, indexed by [`ArchReg::flat_index`].
    map: Vec<Tag>,
    /// Committed (retirement) map.
    committed: Vec<Tag>,
    /// Ready bit per physical tag.
    ready: Vec<bool>,
    free_int: VecDeque<Tag>,
    free_fp: VecDeque<Tag>,
}

impl RenameState {
    /// Creates the initial state: architectural register `i` of each class
    /// maps to a distinct ready tag; the rest of the tags are free.
    ///
    /// # Panics
    ///
    /// Panics if either file has fewer physical than architectural
    /// registers, or more than `Tag` can index.
    pub fn new(phys_int: usize, phys_fp: usize) -> RenameState {
        assert!(phys_int >= NUM_ARCH_REGS && phys_fp >= NUM_ARCH_REGS); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        assert!(phys_int + phys_fp <= Tag::MAX as usize + 1);
        let mut map = Vec::with_capacity(2 * NUM_ARCH_REGS);
        for i in 0..NUM_ARCH_REGS {
            map.push(i as Tag); // int arch i -> tag i
        }
        for i in 0..NUM_ARCH_REGS {
            map.push((phys_int + i) as Tag); // fp arch i -> tag phys_int+i
        }
        let committed = map.clone();
        let mut ready = vec![false; phys_int + phys_fp];
        for &t in &map {
            ready[t as usize] = true;
        }
        let free_int = (NUM_ARCH_REGS..phys_int).map(|t| t as Tag).collect();
        let free_fp = (phys_int + NUM_ARCH_REGS..phys_int + phys_fp).map(|t| t as Tag).collect();
        RenameState { phys_int, map, committed, ready, free_int, free_fp }
    }

    fn free_list(&mut self, class: RegClass) -> &mut VecDeque<Tag> {
        match class {
            RegClass::Int => &mut self.free_int,
            RegClass::Fp => &mut self.free_fp,
        }
    }

    /// Free physical registers available for `class`.
    pub fn free_count(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.free_int.len(),
            RegClass::Fp => self.free_fp.len(),
        }
    }

    /// Current speculative mapping of `reg`.
    pub fn lookup(&self, reg: ArchReg) -> Tag {
        self.map[reg.flat_index()]
    }

    /// Is the value of `tag` available?
    pub fn is_ready(&self, tag: Tag) -> bool {
        self.ready[tag as usize]
    }

    /// Marks `tag` ready (result written back).
    pub fn set_ready(&mut self, tag: Tag) {
        self.ready[tag as usize] = true;
    }

    /// Renames a source operand: returns `None` if the value is already
    /// available, otherwise the tag to wait on.
    pub fn rename_src(&self, reg: ArchReg) -> Option<Tag> {
        if reg.is_zero() {
            return None;
        }
        let tag = self.lookup(reg);
        if self.is_ready(tag) {
            None
        } else {
            Some(tag)
        }
    }

    /// Renames a destination: allocates a new (not-ready) tag, updates the
    /// speculative map, and returns `(new_tag, previous_tag)`. The previous
    /// tag is freed when the instruction commits.
    ///
    /// Returns `None` if the free list for the class is empty (dispatch must
    /// stall).
    pub fn rename_dst(&mut self, reg: ArchReg) -> Option<(Tag, Tag)> {
        let new = self.free_list(reg.class).pop_front()?;
        let old = self.map[reg.flat_index()];
        self.map[reg.flat_index()] = new;
        self.ready[new as usize] = false;
        Some((new, old))
    }

    /// Reverses a speculative [`rename_dst`](Self::rename_dst) during
    /// misprediction squash. Must be called in reverse dispatch order so
    /// nested renames of the same register unwind correctly.
    pub fn undo_dst(&mut self, reg: ArchReg, new: Tag, old: Tag) {
        debug_assert_eq!(self.map[reg.flat_index()], new, "squash order violation");
        self.map[reg.flat_index()] = old;
        self.free_list(reg.class).push_front(new);
    }

    /// Commits a destination rename: the committed map adopts `new` and the
    /// previously committed tag `old` returns to the free list.
    pub fn commit_dst(&mut self, reg: ArchReg, new: Tag, old: Tag) {
        debug_assert_eq!(self.committed[reg.flat_index()], old, "commit order violation");
        self.committed[reg.flat_index()] = new;
        let class = reg.class;
        self.free_list(class).push_back(old);
    }

    /// Full-flush recovery: the speculative map reverts to the committed
    /// map, committed values become ready, and every other tag is free.
    pub fn recover(&mut self) {
        self.map.copy_from_slice(&self.committed);
        let mut live = vec![false; self.ready.len()];
        for &t in &self.committed {
            live[t as usize] = true;
            self.ready[t as usize] = true;
        }
        self.free_int.clear();
        self.free_fp.clear();
        for t in 0..self.ready.len() {
            if !live[t] {
                if t < self.phys_int {
                    self.free_int.push_back(t as Tag);
                } else {
                    self.free_fp.push_back(t as Tag);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Reg;

    fn r(i: u8) -> ArchReg {
        ArchReg::int(i)
    }

    #[test]
    fn initial_state_is_ready_and_sized() {
        let s = RenameState::new(48, 40);
        assert_eq!(s.free_count(RegClass::Int), 16);
        assert_eq!(s.free_count(RegClass::Fp), 8);
        assert!(s.is_ready(s.lookup(r(5))));
        assert_eq!(s.rename_src(r(5)), None);
    }

    #[test]
    fn zero_register_is_always_ready() {
        let s = RenameState::new(48, 48);
        assert_eq!(s.rename_src(Reg::ZERO.into()), None);
    }

    #[test]
    fn dst_rename_creates_dependence_until_writeback() {
        let mut s = RenameState::new(48, 48);
        let (new, _old) = s.rename_dst(r(3)).unwrap();
        assert_eq!(s.rename_src(r(3)), Some(new), "consumer waits on the new tag");
        s.set_ready(new);
        assert_eq!(s.rename_src(r(3)), None);
    }

    #[test]
    fn commit_frees_previous_mapping() {
        let mut s = RenameState::new(48, 48);
        let before = s.free_count(RegClass::Int);
        let (new, old) = s.rename_dst(r(3)).unwrap();
        assert_eq!(s.free_count(RegClass::Int), before - 1);
        s.commit_dst(r(3), new, old);
        assert_eq!(s.free_count(RegClass::Int), before, "old tag recycled");
    }

    #[test]
    fn free_list_exhaustion_reports_none() {
        let mut s = RenameState::new(33, 32); // one free int tag
        assert!(s.rename_dst(r(1)).is_some());
        assert!(s.rename_dst(r(2)).is_none(), "no free tag left");
    }

    #[test]
    fn recover_restores_committed_view() {
        let mut s = RenameState::new(48, 48);
        // Commit one rename of r1, then speculate two more (uncommitted).
        let (n1, o1) = s.rename_dst(r(1)).unwrap();
        s.set_ready(n1);
        s.commit_dst(r(1), n1, o1);
        let (n2, _) = s.rename_dst(r(1)).unwrap();
        let (n3, _) = s.rename_dst(r(2)).unwrap();
        s.recover();
        assert_eq!(s.lookup(r(1)), n1, "speculative renames rolled back");
        assert_ne!(s.lookup(r(1)), n2);
        assert_ne!(s.lookup(r(2)), n3);
        assert!(s.is_ready(s.lookup(r(1))));
        // All non-live tags free again: 48 - 32 = 16 per class.
        assert_eq!(s.free_count(RegClass::Int), 16);
        assert_eq!(s.free_count(RegClass::Fp), 16);
    }

    #[test]
    fn fp_and_int_tags_do_not_collide() {
        let mut s = RenameState::new(64, 64);
        let (ni, _) = s.rename_dst(ArchReg::int(4)).unwrap();
        let (nf, _) = s.rename_dst(ArchReg::fp(4)).unwrap();
        assert_ne!(ni, nf);
        assert!((ni as usize) < 64);
        assert!((nf as usize) >= 64);
    }
}
