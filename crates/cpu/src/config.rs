//! Core configuration — the paper's Table 2 (medium/base) and Table 4
//! (large) processor models.

use swque_branch::PredictorConfig;
use swque_core::{BucketSpec, IqConfig};
use swque_mem::MemConfig;

/// Full out-of-order core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Pipeline width for fetch, decode/dispatch, issue and commit
    /// (6 medium, 8 large).
    pub width: usize,
    /// Reorder-buffer entries (256 / 512).
    pub rob_entries: usize,
    /// Load/store-queue entries (128 / 256).
    pub lsq_entries: usize,
    /// Physical integer registers (256 / 512).
    pub phys_int: usize,
    /// Physical floating-point registers (256 / 512).
    pub phys_fp: usize,
    /// Function units per class, indexed by `FuClass::index()`:
    /// `[iALU, iMULT/DIV, Ld/St, FPU]` — `[3,1,2,2]` / `[4,1,2,3]`.
    pub fu_counts: [usize; 4],
    /// Fetch-to-dispatch latency in cycles; doubles as the misprediction
    /// refill penalty (Table 2: 10 cycles).
    pub frontend_depth: u64,
    /// Issue-queue configuration (capacity 128 / 256).
    pub iq: IqConfig,
    /// Branch predictor (12-bit-history 4K gshare, 2K×4 BTB).
    pub predictor: PredictorConfig,
    /// Memory hierarchy (Table 2 caches, prefetcher, DRAM).
    pub mem: MemConfig,
    /// Quiescence skipping (DESIGN.md §10): when the core proves no stage
    /// can act this cycle, jump the clock to the next wake horizon instead
    /// of ticking. Simulated timing and statistics are byte-identical
    /// either way (the skip differential pins this); the flag exists for
    /// the differential itself and the `SWQUE_NO_SKIP` escape hatch.
    pub skip: bool,
}

impl CoreConfig {
    /// The paper's medium (default/base) model — Table 2.
    pub fn medium() -> CoreConfig {
        CoreConfig {
            width: 6,
            rob_entries: 256,
            lsq_entries: 128,
            phys_int: 256,
            phys_fp: 256,
            fu_counts: [3, 1, 2, 2],
            frontend_depth: 10,
            iq: IqConfig {
                capacity: 128,
                issue_width: 6,
                buckets: BucketSpec::medium(),
                ..IqConfig::default()
            },
            predictor: PredictorConfig::default(),
            mem: MemConfig::default(),
            skip: true,
        }
    }

    /// The paper's large model — Table 4 (only the seven listed parameters
    /// scale; everything else keeps its medium value).
    pub fn large() -> CoreConfig {
        CoreConfig {
            width: 8,
            rob_entries: 512,
            lsq_entries: 256,
            phys_int: 512,
            phys_fp: 512,
            fu_counts: [4, 1, 2, 3],
            iq: IqConfig {
                capacity: 256,
                issue_width: 8,
                buckets: BucketSpec::large(),
                ..IqConfig::default()
            },
            ..CoreConfig::medium()
        }
    }

    /// A small configuration for fast unit tests (not a paper model).
    pub fn tiny() -> CoreConfig {
        CoreConfig {
            width: 2,
            rob_entries: 16,
            lsq_entries: 8,
            phys_int: 48,
            phys_fp: 48,
            fu_counts: [2, 1, 1, 1],
            frontend_depth: 3,
            iq: IqConfig { capacity: 8, issue_width: 2, ..IqConfig::default() },
            predictor: PredictorConfig::default(),
            mem: MemConfig::default(),
            skip: true,
        }
    }

    /// Total physical-register tags (int + fp).
    pub fn total_phys(&self) -> usize {
        self.phys_int + self.phys_fp
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_medium_values() {
        let c = CoreConfig::medium();
        assert_eq!(c.width, 6);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.iq.capacity, 128);
        assert_eq!(c.lsq_entries, 128);
        assert_eq!((c.phys_int, c.phys_fp), (256, 256));
        assert_eq!(c.fu_counts, [3, 1, 2, 2]);
        assert_eq!(c.frontend_depth, 10);
    }

    #[test]
    fn table4_large_scales_exactly_seven_parameters() {
        let m = CoreConfig::medium();
        let l = CoreConfig::large();
        assert_eq!(l.width, 8);
        assert_eq!(l.iq.capacity, 256);
        assert_eq!(l.lsq_entries, 256);
        assert_eq!(l.rob_entries, 512);
        assert_eq!((l.phys_int, l.phys_fp), (512, 512));
        assert_eq!(l.fu_counts[0], 4, "iALUs scale");
        assert_eq!(l.fu_counts[3], 3, "FPUs scale");
        assert_eq!(l.fu_counts[1], m.fu_counts[1], "iMULT/DIV unchanged");
        assert_eq!(l.fu_counts[2], m.fu_counts[2], "Ld/St unchanged");
        assert_eq!(l.mem, m.mem, "memory system unchanged");
        assert_eq!(l.frontend_depth, m.frontend_depth);
    }

    #[test]
    fn phys_reg_totals() {
        assert_eq!(CoreConfig::medium().total_phys(), 512);
        assert_eq!(CoreConfig::large().total_phys(), 1024);
    }
}
