//! Load/store queue: memory ordering, conservative disambiguation and
//! store-to-load forwarding.
//!
//! Rules (SimpleScalar-style, documented in DESIGN.md):
//!
//! * A load may begin its memory access only when every older store's
//!   address is known.
//! * If the youngest older store with a known address overlaps the load
//!   *exactly* (same 8-byte range), the load forwards from it and completes
//!   with L1-hit-like latency once the store has executed.
//! * If an older store overlaps partially, the load waits until that store
//!   commits (leaves the queue).
//! * Stores execute (compute their address/data) when issued and write the
//!   cache at commit.

use std::collections::VecDeque;

/// What the load scheduler should do with a load this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadAction {
    /// No older-store hazard: access the cache.
    Access,
    /// Forward from an older store already executed.
    Forward,
    /// An older store's address is unknown or partially overlaps: retry
    /// later.
    Wait,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    uid: u64,
    is_store: bool,
    addr: u64,
    size: u8,
    /// Store: address (and data) computed, i.e. the store has issued.
    executed: bool,
    /// Load: memory access already started (or forwarded).
    started: bool,
}

/// The load/store queue.
#[derive(Debug)]
pub struct Lsq {
    capacity: usize,
    entries: VecDeque<LsqEntry>,
}

fn overlap(a: u64, asize: u8, b: u64, bsize: u8) -> bool {
    a < b + bsize as u64 && b < a + asize as u64
}

impl Lsq {
    /// Creates an empty LSQ of `capacity` entries.
    pub fn new(capacity: usize) -> Lsq {
        Lsq { capacity, entries: VecDeque::with_capacity(capacity) }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if a memory instruction can dispatch.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates an entry at dispatch (program order).
    ///
    /// # Panics
    ///
    /// Panics if full.
    pub fn push(&mut self, uid: u64, is_store: bool, addr: u64, size: u8) {
        assert!(self.has_space(), "LSQ overflow"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract: dispatch budgets with has_space first
        self.entries.push_back(LsqEntry { uid, is_store, addr, size, executed: false, started: false });
    }

    fn index_of(&self, uid: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.uid == uid)
    }

    /// Marks a store as executed (its address/data are now known).
    pub fn mark_store_executed(&mut self, uid: u64) {
        if let Some(i) = self.index_of(uid) {
            debug_assert!(self.entries[i].is_store);
            self.entries[i].executed = true;
        }
    }

    /// Marks a load as having started its access (so it is not re-issued).
    pub fn mark_load_started(&mut self, uid: u64) {
        if let Some(i) = self.index_of(uid) {
            debug_assert!(!self.entries[i].is_store);
            self.entries[i].started = true;
        }
    }

    /// True if the load has already begun its access.
    pub fn load_started(&self, uid: u64) -> bool {
        self.index_of(uid).map(|i| self.entries[i].started).unwrap_or(true)
    }

    /// Decides whether the load `uid` may access memory this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `uid` is not in the queue.
    pub fn load_action(&self, uid: u64) -> LoadAction {
        // swque-lint: allow(panic-in-lib) — documented `# Panics` contract: the scheduler only queries loads it dispatched
        let i = self.index_of(uid).expect("load must be in the LSQ");
        let load = self.entries[i];
        debug_assert!(!load.is_store);
        // Scan older entries from youngest to oldest.
        for j in (0..i).rev() {
            let e = &self.entries[j];
            if !e.is_store {
                continue;
            }
            if !e.executed {
                // Conservative: unknown older store address blocks the load.
                return LoadAction::Wait;
            }
            if e.addr == load.addr && e.size == load.size {
                return LoadAction::Forward;
            }
            if overlap(e.addr, e.size, load.addr, load.size) {
                return LoadAction::Wait; // partial overlap: wait for commit
            }
        }
        LoadAction::Access
    }

    /// Removes the entry for `uid` at commit (no-op if absent).
    pub fn remove(&mut self, uid: u64) {
        if let Some(i) = self.index_of(uid) {
            self.entries.remove(i);
        }
    }

    /// Empties the queue (full flush).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_load_accesses_immediately() {
        let mut q = Lsq::new(8);
        q.push(1, false, 0x100, 8);
        assert_eq!(q.load_action(1), LoadAction::Access);
    }

    #[test]
    fn unknown_older_store_blocks_load() {
        let mut q = Lsq::new(8);
        q.push(1, true, 0x100, 8); // store, not yet executed
        q.push(2, false, 0x900, 8); // unrelated load
        assert_eq!(q.load_action(2), LoadAction::Wait, "address unknown until the store executes");
        q.mark_store_executed(1);
        assert_eq!(q.load_action(2), LoadAction::Access, "no overlap once known");
    }

    #[test]
    fn exact_overlap_forwards() {
        let mut q = Lsq::new(8);
        q.push(1, true, 0x100, 8);
        q.push(2, false, 0x100, 8);
        q.mark_store_executed(1);
        assert_eq!(q.load_action(2), LoadAction::Forward);
    }

    #[test]
    fn partial_overlap_waits_for_commit() {
        let mut q = Lsq::new(8);
        q.push(1, true, 0x100, 8);
        q.push(2, false, 0x104, 8); // straddles the store
        q.mark_store_executed(1);
        assert_eq!(q.load_action(2), LoadAction::Wait);
        q.remove(1); // store commits
        assert_eq!(q.load_action(2), LoadAction::Access);
    }

    #[test]
    fn youngest_matching_store_wins() {
        let mut q = Lsq::new(8);
        q.push(1, true, 0x100, 8);
        q.push(2, true, 0x100, 8);
        q.push(3, false, 0x100, 8);
        q.mark_store_executed(1);
        // Store 2 (younger, same address) has unknown address: must wait.
        assert_eq!(q.load_action(3), LoadAction::Wait);
        q.mark_store_executed(2);
        assert_eq!(q.load_action(3), LoadAction::Forward);
    }

    #[test]
    fn younger_stores_do_not_affect_load() {
        let mut q = Lsq::new(8);
        q.push(1, false, 0x100, 8);
        q.push(2, true, 0x100, 8); // younger store, unexecuted
        assert_eq!(q.load_action(1), LoadAction::Access);
    }

    #[test]
    fn capacity_and_removal() {
        let mut q = Lsq::new(2);
        q.push(1, true, 0, 8);
        q.push(2, false, 8, 8);
        assert!(!q.has_space());
        q.remove(1);
        assert!(q.has_space());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn load_started_bookkeeping() {
        let mut q = Lsq::new(4);
        q.push(5, false, 0x40, 8);
        assert!(!q.load_started(5));
        q.mark_load_started(5);
        assert!(q.load_started(5));
        assert!(q.load_started(99), "absent loads count as started (already handled)");
    }
}
