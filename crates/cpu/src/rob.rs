//! Reorder buffer: program-order retirement of out-of-order execution.

use std::collections::{BTreeMap, VecDeque};

use swque_isa::{ArchReg, Retired};

use swque_core::Tag;

/// Execution state of a ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobState {
    /// Waiting in the issue queue (or not yet issued).
    Waiting,
    /// Issued to a function unit / memory.
    Executing,
    /// Result written back; eligible for commit.
    Done,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Stable identity of the dynamic instruction (survives replays).
    pub uid: u64,
    /// Dispatch-order sequence number (fresh per dispatch).
    pub seq: u64,
    /// The oracle outcome (instruction, next pc, memory access).
    pub oracle: Retired,
    /// Execution state.
    pub state: RobState,
    /// Destination rename `(arch, new_tag, old_tag)`, if any.
    pub dst: Option<(ArchReg, Tag, Tag)>,
    /// True if the front end flagged this control instruction mispredicted.
    pub mispredicted: bool,
    /// True for wrong-path instructions (fetched past a mispredicted
    /// branch); they are squashed when the branch resolves and never
    /// commit.
    pub wp: bool,
}

/// A bounded, program-ordered reorder buffer keyed by instruction uid.
#[derive(Debug)]
pub struct Rob {
    capacity: usize,
    order: VecDeque<u64>,
    /// Ordered map, per the determinism contract (DESIGN.md §8): uids are
    /// monotone and the map stays at ROB size (≤ a few hundred), so the
    /// B-tree costs nothing measurable while making every traversal
    /// host-independent.
    entries: BTreeMap<u64, RobEntry>,
}

impl Rob {
    /// Creates an empty ROB of `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob { capacity, order: VecDeque::with_capacity(capacity), entries: BTreeMap::new() }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no instruction is in flight.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True if another instruction can dispatch.
    pub fn has_space(&self) -> bool {
        self.order.len() < self.capacity
    }

    /// Appends an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if full or if `uid` is already present.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(self.has_space(), "ROB overflow"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract: dispatch budgets with has_space first
        let uid = entry.uid;
        let prev = self.entries.insert(uid, entry);
        assert!(prev.is_none(), "duplicate ROB uid {uid}"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract; uid reuse would alias two in-flight instructions
        self.order.push_back(uid);
    }

    /// Looks up an entry by uid.
    pub fn get(&self, uid: u64) -> Option<&RobEntry> {
        self.entries.get(&uid)
    }

    /// Mutable lookup by uid.
    pub fn get_mut(&mut self, uid: u64) -> Option<&mut RobEntry> {
        self.entries.get_mut(&uid)
    }

    /// The oldest in-flight entry, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        self.order.front().map(|uid| &self.entries[uid])
    }

    /// Retires the head entry (must be `Done`).
    ///
    /// # Panics
    ///
    /// Panics if empty or if the head has not completed.
    pub fn pop_head(&mut self) -> RobEntry {
        let uid = self.order.pop_front().expect("pop from empty ROB"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract: commit checks head() first
        // swque-lint: allow(panic-in-lib) — order and entries are mutated together; desync is a ROB bug
        let entry = self.entries.remove(&uid).expect("order/entries in sync");
        // swque-lint: allow(panic-in-lib) — documented `# Panics` contract: commit only retires Done heads
        assert_eq!(entry.state, RobState::Done, "commit of incomplete instruction");
        entry
    }

    /// Removes every entry younger than `seq` (exclusive), returning them
    /// youngest-first so the caller can unwind renames in reverse order.
    pub fn squash_younger(&mut self, seq: u64) -> Vec<RobEntry> {
        let mut out = Vec::new();
        while let Some(&uid) = self.order.back() {
            if self.entries[&uid].seq <= seq {
                break;
            }
            self.order.pop_back();
            out.extend(self.entries.remove(&uid));
        }
        out
    }

    /// Drains every in-flight entry in program order (full flush). The
    /// caller replays them through the front end.
    pub fn drain_in_order(&mut self) -> Vec<RobEntry> {
        let mut out = Vec::with_capacity(self.order.len());
        for uid in self.order.drain(..) {
            out.extend(self.entries.remove(&uid));
        }
        out
    }

    /// Iterates in program order.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> + '_ {
        self.order.iter().map(|uid| &self.entries[uid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::{Inst, Opcode};

    fn entry(uid: u64) -> RobEntry {
        RobEntry {
            uid,
            seq: uid,
            oracle: Retired {
                pc: uid,
                inst: Inst::bare(Opcode::Nop),
                next_pc: uid + 1,
                mem: None,
            },
            state: RobState::Waiting,
            dst: None,
            mispredicted: false,
            wp: false,
        }
    }

    #[test]
    fn fifo_commit_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        rob.get_mut(1).unwrap().state = RobState::Done;
        rob.get_mut(2).unwrap().state = RobState::Done;
        assert_eq!(rob.pop_head().uid, 1);
        assert_eq!(rob.pop_head().uid, 2);
        assert!(rob.is_empty());
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn commit_of_waiting_head_panics() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        let _ = rob.pop_head();
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(!rob.has_space());
    }

    #[test]
    fn drain_preserves_program_order() {
        let mut rob = Rob::new(4);
        for uid in [10, 11, 12] {
            rob.push(entry(uid));
        }
        let drained = rob.drain_in_order();
        assert_eq!(drained.iter().map(|e| e.uid).collect::<Vec<_>>(), vec![10, 11, 12]);
        assert!(rob.is_empty());
        assert!(rob.get(11).is_none());
    }

    #[test]
    fn out_of_order_completion_in_order_commit() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        rob.get_mut(2).unwrap().state = RobState::Done; // younger completes first
        assert_eq!(rob.head().unwrap().uid, 1);
        assert_eq!(rob.head().unwrap().state, RobState::Waiting, "head not committable yet");
    }
}
