//! Cycle-level out-of-order superscalar core simulator — the SWQUE
//! reproduction's substitute for the paper's SimpleScalar-based simulator.
//!
//! The core executes programs written in the `swque-isa` instruction set
//! with any of the issue-queue organizations from `swque-core`, over the
//! `swque-mem` cache hierarchy and `swque-branch` predictors. Configurations
//! for the paper's medium (Table 2) and large (Table 4) processor models are
//! provided by [`CoreConfig::medium`] and [`CoreConfig::large`].
//!
//! # Example
//!
//! ```
//! use swque_cpu::{Core, CoreConfig};
//! use swque_core::IqKind;
//! use swque_isa::{Assembler, Reg};
//!
//! let mut a = Assembler::new();
//! a.li(Reg(1), 1000);
//! a.li(Reg(2), 0);
//! a.label("loop");
//! a.add(Reg(2), Reg(2), Reg(1));
//! a.addi(Reg(1), Reg(1), -1);
//! a.bne(Reg(1), Reg::ZERO, "loop");
//! a.halt();
//! let program = a.finish().unwrap();
//!
//! let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
//! let result = core.run(u64::MAX);
//! assert_eq!(core.emulator().int_reg(Reg(2)), 500_500);
//! assert!(result.ipc() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod fu;
mod lsq;
mod multi;
mod rename;
mod result;
mod rob;
mod switching;

pub use crate::core::{Core, PipelineSnapshot};
pub use crate::multi::MultiCoreSim;
pub use config::CoreConfig;
pub use fu::FuPool;
pub use lsq::{LoadAction, Lsq};
pub use rename::RenameState;
pub use result::{CoreStats, InvariantViolation, SimResult};
pub use rob::{Rob, RobEntry, RobState};
pub use switching::{mode_switch_response, SwitchResponse};
