//! Lockstep multi-core simulation over a shared memory hierarchy.
//!
//! [`MultiCoreSim`] steps N [`Core`]s round-robin, one cycle each, over one
//! [`MemoryHierarchy`] built with [`MemoryHierarchy::shared`]: private L1s
//! and MSHR quotas per core, shared L2/prefetcher/DRAM with round-robin
//! channel arbitration (DESIGN.md §11). Core `i` is requester `i`, so every
//! shared-level counter ([`MemoryHierarchy::shared_stats`]) and MemEpoch
//! trace event attributes traffic to the core that caused it.
//!
//! # Single-core equivalence
//!
//! With one core, the drive loop reduces exactly to [`Core::run`]'s loop
//! (step, progress check, optional skip, progress check — in that order),
//! and a one-requester shared hierarchy is bit-identical to the owned
//! single-core hierarchy, so `MultiCoreSim` with N=1 produces a
//! byte-identical [`SimResult`] to a standalone [`Core`] — pinned by the
//! `multi_differential` test across all queue kinds.
//!
//! # Quiescence skipping
//!
//! A clock jump is taken only when *every* active core is quiescent
//! ([`Core::quiescent_horizon_on`], which folds in the shared hierarchy's
//! wake horizon — covering neighbors' in-flight fills) and every active
//! core has skipping enabled. The jump length is the minimum over the
//! cores' horizons, so no core is carried past its own wake-up; cores that
//! have finished (or hit their retirement bound, or froze on a violation)
//! no longer advance and do not constrain the jump.

use swque_core::IqKind;
use swque_isa::Program;
use swque_mem::{MemoryHierarchy, SharedMemStats};
use swque_trace::TraceHandle;

use crate::config::CoreConfig;
use crate::core::Core;
use crate::result::SimResult;

/// N cores in lockstep over one shared memory hierarchy.
#[derive(Debug)]
pub struct MultiCoreSim {
    cores: Vec<Core>,
    mem: MemoryHierarchy,
}

impl MultiCoreSim {
    /// Creates `workloads.len()` cores — core `i` running `workloads[i]`'s
    /// program with its issue-queue kind — sharing one hierarchy built
    /// from `config.mem`. Every core uses the same `config` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    pub fn new(config: CoreConfig, workloads: &[(IqKind, &Program)]) -> MultiCoreSim {
        assert!(!workloads.is_empty(), "a multi-core sim needs at least one core"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        let mem = MemoryHierarchy::shared(config.mem, workloads.len());
        let cores = workloads
            .iter()
            .enumerate()
            .map(|(i, (kind, program))| Core::detached(config.clone(), *kind, program, i))
            .collect();
        MultiCoreSim { cores, mem }
    }

    /// The cores, indexed by requester id.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// The shared memory hierarchy.
    pub fn mem(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Shared-level contention counters
    /// (see [`MemoryHierarchy::shared_stats`]).
    pub fn shared_stats(&self) -> SharedMemStats {
        self.mem.shared_stats()
    }

    /// Connects an observability sink to every core and to the shared
    /// hierarchy (MemEpoch events carry the triggering requester id).
    pub fn attach_trace(&mut self, trace: &TraceHandle) {
        for core in &mut self.cores {
            core.attach_trace(trace);
        }
        self.mem.set_trace(trace);
    }

    /// Enables or disables quiescence skipping on every core (jumps are
    /// all-or-nothing across cores, so a single disabled core pins the
    /// whole sim to per-cycle stepping).
    pub fn set_skip(&mut self, on: bool) {
        for core in &mut self.cores {
            core.set_skip(on);
        }
    }

    /// `(jumps_taken, cycles_skipped)` summed over all cores — host-side
    /// observability only, never part of any [`SimResult`].
    pub fn skip_stats(&self) -> (u64, u64) {
        self.cores.iter().map(Core::skip_stats).fold((0, 0), |(j, c), (dj, dc)| {
            (j + dj, c + dc)
        })
    }

    /// Runs every core until it retires `max_insts` instructions, finishes
    /// its program, or freezes on an invariant violation; cores that reach
    /// any of those stop stepping while the rest continue. Returns one
    /// [`SimResult`] per core, indexed by requester id.
    pub fn run(&mut self, max_insts: u64) -> Vec<SimResult> {
        loop {
            let mut stepped = false;
            for core in &mut self.cores {
                if core.active(max_insts) {
                    stepped = true;
                    core.step_cycle_on(&mut self.mem);
                    core.check_progress();
                }
            }
            if !stepped {
                break;
            }
            self.try_skip(max_insts);
        }
        self.cores.iter().map(|c| c.result_on(&self.mem)).collect()
    }

    /// One skip attempt: jump every active core by the minimum of their
    /// quiescent horizons, or nothing at all (some core must tick, or has
    /// skipping disabled).
    fn try_skip(&mut self, max_insts: u64) {
        let mut jump: Option<u64> = None;
        for core in &self.cores {
            if !core.active(max_insts) {
                continue;
            }
            if !core.skip_enabled() {
                return;
            }
            let Some(h) = core.quiescent_horizon_on(&self.mem) else { return };
            let n = h.saturating_sub(core.cycle());
            if n == 0 {
                return;
            }
            jump = Some(jump.map_or(n, |j| j.min(n)));
        }
        let Some(n) = jump else { return };
        for core in &mut self.cores {
            if core.active(max_insts) {
                core.apply_skip(n);
                core.check_progress();
            }
        }
    }
}
