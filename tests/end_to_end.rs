//! Workspace-level integration tests: the whole stack (ISA → workloads →
//! queues → core) exercised together through the `swque` facade.

use swque::cpu::{Core, CoreConfig};
use swque::iq::{IqKind, IqMode};
use swque::isa::Emulator;
use swque::workloads::{suite, IlpClass};

/// Architectural results must be identical across every issue-queue
/// organization — scheduling policy may change *when* things happen, never
/// *what* happens.
#[test]
fn all_queues_compute_identical_results_on_suite_kernels() {
    for name in ["deepsjeng_like", "cam4_like", "xz_like"] {
        let kernel = suite::by_name(name).expect("kernel");
        let program = kernel.build_scaled(40);
        let mut reference = Emulator::new(&program);
        reference.run(50_000_000).expect("functional run terminates");

        for kind in IqKind::ALL {
            let mut core = Core::new(CoreConfig::tiny(), kind, &program);
            core.run(u64::MAX);
            assert!(core.finished(), "{name}/{kind}: pipeline drains");
            for r in 1..32u8 {
                assert_eq!(
                    core.emulator().int_reg(swque::isa::Reg(r)),
                    reference.int_reg(swque::isa::Reg(r)),
                    "{name}/{kind}: r{r} diverged"
                );
            }
        }
    }
}

/// Simulation must be fully deterministic: two identical runs give
/// identical cycle counts and statistics.
#[test]
fn simulation_is_deterministic() {
    let kernel = suite::by_name("leela_like").expect("kernel");
    let run = || {
        let program = kernel.build_scaled(2_000);
        let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
        core.run(80_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.iq, b.iq);
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.branch, b.branch);
    assert_eq!(a.core, b.core);
}

/// The headline behaviour: on a priority-sensitive kernel, SWQUE sits in
/// CIRC-PC mode and beats AGE; on an MLP kernel it sits in AGE mode and
/// matches AGE.
#[test]
fn swque_picks_the_right_mode_per_class() {
    // m-ILP: CIRC-PC residency.
    let kernel = suite::by_name("deepsjeng_like").expect("kernel");
    let program = kernel.build();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    let warm = core.run(150_000);
    let r = core.run(400_000).delta(&warm);
    let sw = r.swque.expect("mode stats");
    assert!(
        sw.circ_pc_fraction() > 0.6,
        "m-ILP kernel should run mostly as CIRC-PC: {:.2}",
        sw.circ_pc_fraction()
    );

    // MLP: AGE residency.
    let kernel = suite::by_name("omnetpp_like").expect("kernel");
    let program = kernel.build();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    let warm = core.run(60_000);
    let r = core.run(160_000).delta(&warm);
    let sw = r.swque.expect("mode stats");
    assert!(
        sw.circ_pc_fraction() < 0.2,
        "MLP kernel should run mostly as AGE: {:.2}",
        sw.circ_pc_fraction()
    );
    assert!(r.mpki() > 1.0, "MLP kernel misses the LLC: {:.2}", r.mpki());
}

/// The suite's class annotations must match measured behaviour: MLP
/// kernels actually miss the LLC, moderate-ILP kernels do not.
#[test]
fn class_annotations_match_measured_mpki() {
    for kernel in suite::all() {
        if kernel.name == "pop2_like" {
            // pop2_like deliberately alternates compute and memory phases
            // (it exercises the mode controller), so neither class bound
            // applies to its whole-run average.
            continue;
        }
        // Small but warmed-up runs.
        let program = kernel.build();
        let mut core = Core::new(CoreConfig::medium(), IqKind::Age, &program);
        let warm = core.run(150_000);
        let r = core.run(300_000).delta(&warm);
        match kernel.class {
            IlpClass::Mlp => {
                assert!(r.mpki() > 5.0, "{}: MLP kernel has MPKI {:.2}", kernel.name, r.mpki())
            }
            // Residual wrong-path cache pollution leaves a little noise, so
            // the moderate-ILP bound is loose; MLP kernels sit far above it.
            IlpClass::ModerateIlp => assert!(
                r.mpki() < 2.0,
                "{}: m-ILP kernel has MPKI {:.2}",
                kernel.name,
                r.mpki()
            ),
            IlpClass::RichIlp => assert!(
                r.ipc() > 2.0,
                "{}: rich-ILP kernel should flow: IPC {:.2}",
                kernel.name,
                r.ipc()
            ),
        }
    }
}

/// A SWQUE core can be observed mid-run and reports a consistent mode.
#[test]
fn mode_observation_is_consistent_with_stats() {
    let kernel = suite::by_name("pop2_like").expect("kernel");
    let program = kernel.build();
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    let mut saw = (false, false);
    for _ in 0..400_000 {
        core.step_cycle();
        match core.iq_mode() {
            IqMode::CircPc => saw.0 = true,
            IqMode::Age => saw.1 = true,
            IqMode::Fixed => panic!("SWQUE never reports Fixed"),
        }
        if core.finished() {
            break;
        }
    }
    assert!(saw.0 && saw.1, "the phased kernel visits both modes: {saw:?}");
}
