//! # SWQUE — a mode switching issue queue with priority-correcting circular queue
//!
//! This crate is the facade of a full reproduction of *SWQUE: A Mode
//! Switching Issue Queue with Priority-Correcting Circular Queue* (Hideki
//! Ando, MICRO-52, 2019). It re-exports every subsystem so downstream users
//! can depend on a single crate:
//!
//! * [`isa`] — a small 64-bit RISC instruction set, assembler DSL, and
//!   functional emulator used as the execution oracle.
//! * [`branch`] — gshare + BTB branch prediction.
//! * [`mem`] — two-level cache hierarchy with MSHRs, a stream prefetcher and
//!   a bandwidth-limited DRAM model.
//! * [`iq`] — the paper's contribution: every issue-queue organization
//!   (SHIFT, CIRC, CIRC-PPRI, CIRC-PC, RAND, AGE, SWQUE).
//! * [`cpu`] — a cycle-level out-of-order superscalar core simulator.
//! * [`workloads`] — SPEC2017-like synthetic kernels.
//! * [`circuit`] — analytical area / delay / energy models of the IQ
//!   circuits.
//! * [`rng`] — the in-tree deterministic randomness substrate (pinned
//!   xoshiro256\*\* PRNG, property-test harness, bench timer) that keeps
//!   the workspace dependency-free and every workload trace reproducible.
//! * [`trace`] — the observability layer: typed trace events (controller
//!   intervals, mode switches, per-interval IPC), a bounded ring-buffer
//!   recorder that is free when disabled, stream summaries, and the
//!   in-tree JSON reader/writer behind `SWQUE_JSON` structured output.
//!
//! To observe a run at interval granularity, attach a trace before
//! stepping the core:
//!
//! ```
//! use swque::cpu::{Core, CoreConfig};
//! use swque::iq::IqKind;
//! use swque::trace::{TraceHandle, TraceSummary};
//! use swque::workloads::suite;
//!
//! let program = suite::by_name("mcf_like").expect("known kernel").build();
//! let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
//! let trace = TraceHandle::ring(4096);
//! core.attach_trace(&trace);
//! core.run(50_000);
//! let summary = TraceSummary::from_events(&trace.events(), trace.dropped());
//! assert_eq!(summary.mode_strip().len(), summary.intervals.len());
//! ```
//!
//! # Quickstart
//!
//! ```
//! use swque::cpu::{Core, CoreConfig};
//! use swque::iq::IqKind;
//! use swque::workloads::suite;
//!
//! let program = suite::by_name("deepsjeng_like").expect("known kernel").build();
//! let config = CoreConfig::medium();
//! let mut core = Core::new(config, IqKind::Swque, &program);
//! let result = core.run(50_000);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use swque_branch as branch;
pub use swque_circuit as circuit;
pub use swque_core as iq;
pub use swque_cpu as cpu;
pub use swque_isa as isa;
pub use swque_mem as mem;
pub use swque_rng as rng;
pub use swque_trace as trace;
pub use swque_workloads as workloads;
