//! # SWQUE — a mode switching issue queue with priority-correcting circular queue
//!
//! This crate is the facade of a full reproduction of *SWQUE: A Mode
//! Switching Issue Queue with Priority-Correcting Circular Queue* (Hideki
//! Ando, MICRO-52, 2019). It re-exports every subsystem so downstream users
//! can depend on a single crate:
//!
//! * [`isa`] — a small 64-bit RISC instruction set, assembler DSL, and
//!   functional emulator used as the execution oracle.
//! * [`branch`] — gshare + BTB branch prediction.
//! * [`mem`] — two-level cache hierarchy with MSHRs, a stream prefetcher and
//!   a bandwidth-limited DRAM model.
//! * [`iq`] — the paper's contribution: every issue-queue organization
//!   (SHIFT, CIRC, CIRC-PPRI, CIRC-PC, RAND, AGE, SWQUE).
//! * [`cpu`] — a cycle-level out-of-order superscalar core simulator.
//! * [`workloads`] — SPEC2017-like synthetic kernels.
//! * [`circuit`] — analytical area / delay / energy models of the IQ
//!   circuits.
//! * [`rng`] — the in-tree deterministic randomness substrate (pinned
//!   xoshiro256\*\* PRNG, property-test harness, bench timer) that keeps
//!   the workspace dependency-free and every workload trace reproducible.
//!
//! # Quickstart
//!
//! ```
//! use swque::cpu::{Core, CoreConfig};
//! use swque::iq::IqKind;
//! use swque::workloads::suite;
//!
//! let program = suite::by_name("deepsjeng_like").expect("known kernel").build();
//! let config = CoreConfig::medium();
//! let mut core = Core::new(config, IqKind::Swque, &program);
//! let result = core.run(50_000);
//! assert!(result.ipc() > 0.0);
//! ```

pub use swque_branch as branch;
pub use swque_circuit as circuit;
pub use swque_core as iq;
pub use swque_cpu as cpu;
pub use swque_isa as isa;
pub use swque_mem as mem;
pub use swque_rng as rng;
pub use swque_workloads as workloads;
